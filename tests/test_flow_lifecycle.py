"""Finite flows: byte budgets, completion times, FCT metrics."""

import pytest

from repro.metrics import FctSummary, FlowCompletion, fct_summary
from repro.sim.engine import Simulator
from repro.topo import ScenarioSpec, build
from repro.topo.generators import access_star_spec
from repro.topo.specs import FlowSpec


def _run_one(transport, size_bytes=200_000, duration=20.0, **flow_kw):
    sim = Simulator(seed=0)
    flow_kw.setdefault(
        "target_bps", 4e6 if transport in ("gtfrc", "qtpaf") else None
    )
    built = build(
        sim,
        ScenarioSpec(
            name="budget",
            topology=access_star_spec(1),
            flows=(
                FlowSpec(
                    "f", "h0", "srv",
                    transport=transport,
                    size_bytes=size_bytes,
                    **flow_kw,
                ),
            ),
        ),
    )
    sim.run(until=duration)
    return sim, built


class TestByteBudgetCompletion:
    @pytest.mark.parametrize("transport", ["tcp", "tfrc", "gtfrc", "qtpaf"])
    def test_finite_flow_completes_and_departs(self, transport):
        sim, built = _run_one(transport)
        (done,) = built.completions()
        assert done.flow_id == "f"
        assert 0.0 < done.completed_at < 20.0
        assert done.size_bytes == 200_000
        # the flow departed: no data events near the end of the run
        assert built.senders["f"].completed_at == done.completed_at

    @pytest.mark.parametrize("transport", ["tcp", "qtpaf"])
    def test_reliable_budget_is_fully_delivered(self, transport):
        sim, built = _run_one(transport)
        # completion for reliable transports means acknowledged bytes,
        # so the receiver saw at least the budget (fresh, not dupes)
        assert built.recorder("f").delivered_bytes >= 200_000

    def test_unbounded_flow_never_completes(self):
        sim, built = _run_one("tcp", size_bytes=None, duration=5.0)
        assert built.completions() == ()
        assert built.senders["f"].completed_at is None

    def test_stop_beats_a_large_budget(self):
        # stop fires first: the flow is cut off without a completion
        sim, built = _run_one(
            "tcp", size_bytes=10**9, duration=5.0, stop=1.0
        )
        assert built.completions() == ()

    def test_budget_beats_a_late_stop(self):
        sim, built = _run_one(
            "tcp", size_bytes=100_000, duration=20.0, stop=19.0
        )
        (done,) = built.completions()
        assert done.completed_at < 19.0

    def test_completion_time_is_deterministic(self):
        a = _run_one("qtpaf")[1].completions()
        b = _run_one("qtpaf")[1].completions()
        assert a == b

    def test_completions_follow_spec_flow_order(self):
        sim = Simulator(seed=0)
        built = build(
            sim,
            ScenarioSpec(
                name="two",
                topology=access_star_spec(2),
                flows=(
                    FlowSpec("a", "h0", "srv", size_bytes=50_000),
                    FlowSpec("b", "h1", "srv", size_bytes=50_000, start=0.5),
                ),
            ),
        )
        sim.run(until=20.0)
        assert [c.flow_id for c in built.completions()] == ["a", "b"]


class TestFlowSpecValidation:
    @pytest.mark.parametrize("size", [0, -100])
    def test_nonpositive_size_bytes_rejected(self, size):
        with pytest.raises(ValueError, match="size_bytes must be positive"):
            FlowSpec("f", "a", "b", size_bytes=size)

    def test_none_means_unbounded(self):
        assert FlowSpec("f", "a", "b").size_bytes is None


class TestFctMetrics:
    def test_duration_and_goodput(self):
        c = FlowCompletion("f", start=1.0, completed_at=3.0, size_bytes=1_000_000)
        assert c.duration == 2.0
        assert c.goodput_bps == pytest.approx(4e6)

    def test_summary_percentiles(self):
        completions = [
            FlowCompletion(f"f{i}", 0.0, float(i + 1), 1000) for i in range(10)
        ]
        summary = fct_summary(completions)
        assert summary.completed == 10
        assert summary.mean == pytest.approx(5.5)
        assert summary.p50 == pytest.approx(5.5)
        assert summary.max == pytest.approx(10.0)
        assert summary.p50 <= summary.p95 <= summary.max

    def test_empty_summary_is_all_zero(self):
        assert fct_summary([]) == FctSummary(
            completed=0, mean=0.0, p50=0.0, p95=0.0, max=0.0
        )
