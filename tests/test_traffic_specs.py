"""Validation tests for the repro.traffic spec vocabulary."""

import pytest

from repro.traffic import (
    ARRIVAL_KINDS,
    SIZE_KINDS,
    ArrivalSpec,
    FlowClassSpec,
    PopulationSpec,
    SizeSpec,
)

POISSON = ArrivalSpec(kind="poisson", rate_per_s=5.0)
FIXED = SizeSpec(kind="fixed", size_bytes=10_000)
MOUSE = FlowClassSpec("mouse", 1.0, "tcp", FIXED)
ENDPOINTS = (("h0", "srv"), ("h1", "srv"))


class TestArrivalSpec:
    def test_kinds_constant(self):
        assert ARRIVAL_KINDS == ("poisson", "onoff", "flash_crowd")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            ArrivalSpec(kind="weibull")

    def test_stray_parameter_rejected(self):
        # a poisson spec with an on/off knob set would silently ignore it
        with pytest.raises(ValueError, match="does not use parameter"):
            ArrivalSpec(kind="poisson", rate_per_s=5.0, mean_on=1.0)

    def test_missing_parameter_rejected(self):
        with pytest.raises(ValueError, match="requires parameter"):
            ArrivalSpec(kind="onoff", rate_per_s=5.0, mean_on=1.0)

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_nonpositive_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="rate_per_s must be positive"):
            ArrivalSpec(kind="poisson", rate_per_s=rate)

    def test_flash_crowd_base_above_peak_rejected(self):
        with pytest.raises(ValueError, match="base_rate_per_s"):
            ArrivalSpec(
                kind="flash_crowd",
                base_rate_per_s=50.0,
                peak_rate_per_s=10.0,
                ramp_start=1.0,
                ramp_duration=1.0,
            )

    def test_flash_crowd_zero_ramp_duration_rejected(self):
        with pytest.raises(ValueError, match="ramp_duration"):
            ArrivalSpec(
                kind="flash_crowd",
                base_rate_per_s=1.0,
                peak_rate_per_s=10.0,
                ramp_start=1.0,
                ramp_duration=0.0,
            )

    def test_flash_crowd_zero_base_allowed(self):
        spec = ArrivalSpec(
            kind="flash_crowd",
            base_rate_per_s=0.0,
            peak_rate_per_s=10.0,
            ramp_start=0.0,
            ramp_duration=2.0,
        )
        assert spec.base_rate_per_s == 0.0


class TestSizeSpec:
    def test_kinds_constant(self):
        assert SIZE_KINDS == ("fixed", "exponential", "pareto")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown size kind"):
            SizeSpec(kind="lognormal")

    def test_stray_parameter_rejected(self):
        with pytest.raises(ValueError, match="does not use parameter"):
            SizeSpec(kind="fixed", size_bytes=100, alpha=1.2)

    def test_missing_parameter_rejected(self):
        with pytest.raises(ValueError, match="requires parameter"):
            SizeSpec(kind="pareto", alpha=1.2)

    def test_pareto_max_below_min_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            SizeSpec(kind="pareto", alpha=1.2, min_bytes=1000, max_bytes=10)

    def test_min_bytes_floor(self):
        with pytest.raises(ValueError, match="min_bytes"):
            SizeSpec(kind="exponential", mean_bytes=100.0, min_bytes=0)


class TestFlowClassSpec:
    def test_weight_must_be_positive(self):
        with pytest.raises(ValueError, match="weight must be positive"):
            FlowClassSpec("m", 0.0, "tcp", FIXED)

    def test_assured_transport_requires_target(self):
        with pytest.raises(ValueError, match="requires target_bps"):
            FlowClassSpec("e", 1.0, "gtfrc", FIXED)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            FlowClassSpec("m", 1.0, "udp", FIXED)


class TestPopulationSpec:
    def _spec(self, **kw):
        defaults = dict(
            name="pop",
            arrival=POISSON,
            classes=(MOUSE,),
            endpoints=ENDPOINTS,
            n_flows=10,
            horizon=5.0,
        )
        defaults.update(kw)
        return PopulationSpec(**defaults)

    def test_valid_spec_roundtrips(self):
        spec = self._spec()
        assert spec.rng_stream == "traffic"
        assert spec.start == 0.0

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate class name"):
            self._spec(classes=(MOUSE, FlowClassSpec("mouse", 2.0, "tcp", FIXED)))

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError, match="at least one flow class"):
            self._spec(classes=())

    def test_empty_endpoints_rejected(self):
        with pytest.raises(ValueError, match="at least one endpoint"):
            self._spec(endpoints=())

    @pytest.mark.parametrize("n", [0, -3])
    def test_nonpositive_n_flows_rejected(self, n):
        with pytest.raises(ValueError, match="n_flows"):
            self._spec(n_flows=n)

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            self._spec(horizon=0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="start"):
            self._spec(start=-1.0)
