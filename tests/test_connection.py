"""Tests for the wire-level capability handshake."""

import pytest

from repro.core.connection import Initiator, Responder
from repro.core.negotiation import CapabilitySet
from repro.core.profile import CongestionControl, LossEstimationSite
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.topology import chain, dumbbell


def handshake(sim, net_src, net_dst, init_caps, resp_caps, **init_kw):
    established = {}
    resp = Responder(
        sim, resp_caps,
        on_established=lambda rcv, prof: established.update(rcv=rcv, prof=prof),
    ).attach(net_dst, "conn")
    init = Initiator(
        sim, dst=net_dst.name, capabilities=init_caps,
        on_established=lambda snd, prof: established.update(snd=snd),
        **init_kw,
    ).attach(net_src, "conn")
    init.start()
    return init, resp, established


class TestHandshake:
    def test_profile_agreed_and_data_flows(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=2e6, bottleneck_delay=0.02)
        init, resp, est = handshake(
            sim, d.net.node("s0"), d.net.node("d0"),
            CapabilitySet(), CapabilitySet(),
        )
        sim.run(until=10)
        assert "snd" in est and "rcv" in est
        assert est["rcv"].received_packets > 100  # transport running
        assert init.profile == resp.profile

    def test_light_receiver_negotiates_qtplight(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1)
        _, _, est = handshake(
            sim, d.net.node("s0"), d.net.node("d0"),
            CapabilitySet(), CapabilitySet(light_receiver=True),
        )
        sim.run(until=5)
        assert est["prof"].loss_estimation is LossEstimationSite.SENDER
        assert est["prof"].name == "QTPlight"
        assert est["rcv"].estimator is None  # the light receiver indeed

    def test_rejection_invokes_failure_callback(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1)
        failures = []
        resp = Responder(
            sim,
            CapabilitySet(estimation_sites=(LossEstimationSite.RECEIVER,)),
        ).attach(d.net.node("d0"), "conn")
        init = Initiator(
            sim, dst="d0",
            capabilities=CapabilitySet(light_receiver=True),
            on_failed=failures.append,
        ).attach(d.net.node("s0"), "conn")
        init.start()
        sim.run(until=5)
        assert failures and "sender-side" in failures[0]

    def test_offer_retransmitted_over_lossy_path(self):
        sim = Simulator(seed=6)
        topo = chain(
            sim, n_hops=1, rate=1e6, delay=0.02,
            channel_factory=lambda: BernoulliLossChannel(0.6, rng=sim.rng("l")),
        )
        init, resp, est = handshake(
            sim, topo.first, topo.last, CapabilitySet(), CapabilitySet(),
        )
        sim.run(until=8)
        assert "snd" in est  # survived 60% control-packet loss
        assert init.attempts > 1

    def test_duplicate_offers_answered_idempotently(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1)
        init, resp, est = handshake(
            sim, d.net.node("s0"), d.net.node("d0"),
            CapabilitySet(), CapabilitySet(),
        )
        sim.run(until=5)
        first_profile = resp.profile
        # force another offer after establishment: must not renegotiate
        init.profile = None
        init.attempts = 0
        init._send_offer()
        sim.run(until=6)
        assert resp.profile == first_profile
