"""Unit tests for queue disciplines (DropTail, RED, RIO)."""

import random

import pytest

from repro.sim.packet import Color, Packet
from repro.sim.queues import DropTailQueue, RedQueue, RioQueue


def pkt(seq=0, size=1000, color=Color.RED):
    return Packet(src="a", dst="b", flow_id="f", size=size, color=color)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(capacity_packets=10)
        first, second = pkt(), pkt()
        q.enqueue(first, 0.0)
        q.enqueue(second, 0.0)
        assert q.dequeue(0.0) is first
        assert q.dequeue(0.0) is second
        assert q.dequeue(0.0) is None

    def test_packet_capacity_tail_drop(self):
        q = DropTailQueue(capacity_packets=2)
        assert q.enqueue(pkt(), 0.0)
        assert q.enqueue(pkt(), 0.0)
        assert not q.enqueue(pkt(), 0.0)
        assert q.stats.dropped == 1
        assert len(q) == 2

    def test_byte_capacity(self):
        q = DropTailQueue(capacity_packets=None, capacity_bytes=2500)
        assert q.enqueue(pkt(size=1000), 0.0)
        assert q.enqueue(pkt(size=1000), 0.0)
        assert not q.enqueue(pkt(size=1000), 0.0)
        assert q.byte_count == 2000

    def test_needs_some_bound(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_packets=None, capacity_bytes=None)

    def test_byte_count_tracks_dequeue(self):
        q = DropTailQueue(capacity_packets=10)
        q.enqueue(pkt(size=700), 0.0)
        assert q.byte_count == 700
        q.dequeue(0.0)
        assert q.byte_count == 0

    def test_drop_ratio(self):
        q = DropTailQueue(capacity_packets=1)
        q.enqueue(pkt(), 0.0)
        q.enqueue(pkt(), 0.0)
        assert q.stats.drop_ratio() == pytest.approx(0.5)

    def test_drops_counted_by_color(self):
        q = DropTailQueue(capacity_packets=1)
        q.enqueue(pkt(color=Color.GREEN), 0.0)
        q.enqueue(pkt(color=Color.GREEN), 0.0)
        assert q.stats.drops_by_color[Color.GREEN] == 1
        assert q.stats.accepts_by_color[Color.GREEN] == 1


class TestRed:
    def test_validates_thresholds(self):
        with pytest.raises(ValueError):
            RedQueue(min_th=10, max_th=5)

    def test_no_drops_below_min_threshold(self):
        q = RedQueue(min_th=5, max_th=15, capacity_packets=60)
        for _ in range(4):
            assert q.enqueue(pkt(), 0.0)
        assert q.stats.dropped == 0

    def test_hard_drop_at_capacity(self):
        q = RedQueue(min_th=5, max_th=15, capacity_packets=8)
        accepted = sum(1 for _ in range(20) if q.enqueue(pkt(), 0.0))
        assert accepted <= 8

    def test_early_drops_between_thresholds(self):
        rng = random.Random(7)
        q = RedQueue(min_th=2, max_th=6, max_p=0.5, weight=0.5,
                     capacity_packets=100, rng=rng)
        drops = 0
        for i in range(200):
            if not q.enqueue(pkt(), i * 0.001):
                drops += 1
            if len(q) > 4:
                q.dequeue(i * 0.001)
        assert drops > 0  # RED dropped before the hard limit
        assert len(q) < 100

    def test_average_decays_when_idle(self):
        q = RedQueue(min_th=2, max_th=6, weight=0.5, mean_pkt_time=0.001)
        for i in range(6):
            q.enqueue(pkt(), 0.0)
        while q.dequeue(0.001) is not None:
            pass
        avg_busy = q.avg
        q.enqueue(pkt(), 1.0)  # long idle gap
        assert q.avg < avg_busy

    def test_deterministic_with_seeded_rng(self):
        def run():
            q = RedQueue(min_th=2, max_th=8, max_p=0.3, weight=0.3,
                         rng=random.Random(3))
            outcomes = []
            for i in range(100):
                outcomes.append(q.enqueue(pkt(), i * 0.01))
                if i % 2:
                    q.dequeue(i * 0.01)
            return outcomes

        assert run() == run()


class TestRio:
    def make(self, **kw):
        params = dict(
            in_min_th=10, in_max_th=20, in_max_p=0.02,
            out_min_th=2, out_max_th=6, out_max_p=0.5,
            weight=0.5, capacity_packets=50, rng=random.Random(5),
        )
        params.update(kw)
        return RioQueue(**params)

    def test_out_profile_dropped_preferentially(self):
        q = self.make()
        green_drops = out_drops = 0
        for i in range(400):
            color = Color.GREEN if i % 2 == 0 else Color.RED
            if not q.enqueue(pkt(color=color), i * 0.001):
                if color is Color.GREEN:
                    green_drops += 1
                else:
                    out_drops += 1
            if len(q) > 8:
                q.dequeue(i * 0.001)
        assert out_drops > 0
        assert out_drops > 10 * max(1, green_drops)

    def test_green_protected_when_in_profile_light(self):
        q = self.make()
        # only green traffic, held under the in-profile threshold
        for i in range(100):
            q.enqueue(pkt(color=Color.GREEN), i * 0.01)
            q.dequeue(i * 0.01)
        assert q.stats.drops_by_color[Color.GREEN] == 0

    def test_yellow_treated_as_out_of_profile(self):
        q = self.make()
        drops = 0
        for i in range(200):
            if not q.enqueue(pkt(color=Color.YELLOW), 0.0):
                drops += 1
        assert drops > 0  # yellow hits the aggressive curve/capacity

    def test_fifo_across_colors(self):
        q = self.make()
        a, b = pkt(color=Color.GREEN), pkt(color=Color.RED)
        q.enqueue(a, 0.0)
        q.enqueue(b, 0.0)
        assert q.dequeue(0.0) is a
        assert q.dequeue(0.0) is b

    def test_in_profile_count_tracked(self):
        q = self.make()
        q.enqueue(pkt(color=Color.GREEN), 0.0)
        q.enqueue(pkt(color=Color.RED), 0.0)
        assert q._in_count_q == 1
        q.dequeue(0.0)
        assert q._in_count_q == 0
