"""Unit tests for SLAs and admission control."""

import pytest

from repro.qos.sla import AdmissionController, AdmissionError, ServiceLevelAgreement
from repro.sim.packet import Color


class TestSla:
    def test_validates_rate_and_burst(self):
        with pytest.raises(ValueError):
            ServiceLevelAgreement("f", committed_rate_bps=0)
        with pytest.raises(ValueError):
            ServiceLevelAgreement("f", committed_rate_bps=1e6, burst_bytes=0)

    def test_build_meter_enforces_committed_rate(self):
        sla = ServiceLevelAgreement("f", committed_rate_bps=8000, burst_bytes=1000)
        meter = sla.build_meter()
        assert meter.color_of(1000, 0.0) is Color.GREEN
        assert meter.color_of(1000, 0.0) is Color.RED  # burst exhausted
        assert meter.color_of(1000, 1.0) is Color.GREEN  # refilled at CIR

    def test_excess_burst_gives_yellow_band(self):
        sla = ServiceLevelAgreement(
            "f", committed_rate_bps=8000, burst_bytes=1000, excess_burst_bytes=1000
        )
        meter = sla.build_meter()
        assert meter.color_of(1000, 0.0) is Color.GREEN
        assert meter.color_of(1000, 0.0) is Color.YELLOW


class TestAdmissionControl:
    def test_admits_within_budget(self):
        ac = AdmissionController(10e6, overprovision_factor=0.9)
        ac.admit(ServiceLevelAgreement("a", 4e6))
        ac.admit(ServiceLevelAgreement("b", 4e6))
        assert ac.committed_bps == 8e6

    def test_rejects_over_budget(self):
        ac = AdmissionController(10e6, overprovision_factor=0.9)
        ac.admit(ServiceLevelAgreement("a", 8e6))
        with pytest.raises(AdmissionError):
            ac.admit(ServiceLevelAgreement("b", 2e6))

    def test_rejects_duplicate_flow(self):
        ac = AdmissionController(10e6)
        ac.admit(ServiceLevelAgreement("a", 1e6))
        with pytest.raises(AdmissionError):
            ac.admit(ServiceLevelAgreement("a", 1e6))

    def test_release_frees_budget(self):
        ac = AdmissionController(10e6, overprovision_factor=1.0)
        ac.admit(ServiceLevelAgreement("a", 9e6))
        ac.release("a")
        ac.admit(ServiceLevelAgreement("b", 9e6))  # fits again
        assert "b" in ac.slas

    def test_release_unknown_is_noop(self):
        AdmissionController(1e6).release("ghost")

    def test_sla_lookup(self):
        ac = AdmissionController(10e6)
        sla = ac.admit(ServiceLevelAgreement("a", 1e6))
        assert ac.sla_for("a") is sla
        with pytest.raises(KeyError):
            ac.sla_for("b")

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(0.0)
