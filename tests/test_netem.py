"""Unit tests for the netem channels."""

import random

import pytest

from repro.netem.channels import (
    BernoulliLossChannel,
    CompositeChannel,
    GilbertElliottChannel,
    JitterChannel,
    PerfectChannel,
)
from repro.sim.packet import Packet


def pkt():
    return Packet(src="a", dst="b", flow_id="f", size=100)


class TestPerfect:
    def test_never_drops_never_delays(self):
        ch = PerfectChannel()
        assert all(ch.transit(pkt(), 0.0) == 0.0 for _ in range(100))


class TestBernoulli:
    def test_zero_rate_never_drops(self):
        ch = BernoulliLossChannel(0.0)
        assert all(ch.transit(pkt(), 0.0) is not None for _ in range(200))

    def test_empirical_rate_near_nominal(self):
        ch = BernoulliLossChannel(0.1, rng=random.Random(1))
        for _ in range(20_000):
            ch.transit(pkt(), 0.0)
        assert ch.observed_loss_rate() == pytest.approx(0.1, abs=0.01)

    def test_counters(self):
        ch = BernoulliLossChannel(0.5, rng=random.Random(1))
        for _ in range(100):
            ch.transit(pkt(), 0.0)
        assert ch.offered == 100
        assert ch.lost == ch.offered - (ch.offered - ch.lost)

    def test_validates_rate(self):
        with pytest.raises(ValueError):
            BernoulliLossChannel(1.0)
        with pytest.raises(ValueError):
            BernoulliLossChannel(-0.1)

    def test_deterministic_given_rng(self):
        def run():
            ch = BernoulliLossChannel(0.3, rng=random.Random(9))
            return [ch.transit(pkt(), 0.0) is None for _ in range(50)]

        assert run() == run()


class TestGilbertElliott:
    def test_steady_state_formula(self):
        ch = GilbertElliottChannel(p_g2b=0.01, p_b2g=0.2, p_good=0.0, p_bad=0.5)
        pi_bad = 0.01 / 0.21
        assert ch.steady_state_loss_rate() == pytest.approx(pi_bad * 0.5)

    def test_empirical_matches_steady_state(self):
        ch = GilbertElliottChannel(
            p_g2b=0.02, p_b2g=0.2, p_good=0.0, p_bad=0.5, rng=random.Random(4)
        )
        for _ in range(100_000):
            ch.transit(pkt(), 0.0)
        assert ch.observed_loss_rate() == pytest.approx(
            ch.steady_state_loss_rate(), rel=0.1
        )

    def test_losses_are_bursty(self):
        """Consecutive-loss runs should be longer than under Bernoulli."""
        ge = GilbertElliottChannel(
            p_g2b=0.01, p_b2g=0.1, p_good=0.0, p_bad=0.9, rng=random.Random(2)
        )

        def mean_run_length(channel, n=50_000):
            runs, current = [], 0
            for _ in range(n):
                if channel.transit(pkt(), 0.0) is None:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            return sum(runs) / len(runs) if runs else 0.0

        target = ge.steady_state_loss_rate()
        be = BernoulliLossChannel(target, rng=random.Random(2))
        assert mean_run_length(ge) > 2 * mean_run_length(be)

    def test_validates_probabilities(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_g2b=1.5)
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_g2b=0.0, p_b2g=0.0)


class TestJitter:
    def test_delay_within_bound(self):
        ch = JitterChannel(0.05, rng=random.Random(1))
        delays = [ch.transit(pkt(), 0.0) for _ in range(500)]
        assert all(0.0 <= d <= 0.05 for d in delays)
        assert max(delays) > 0.02  # actually uses the range

    def test_zero_jitter_allowed(self):
        ch = JitterChannel(0.0)
        assert ch.transit(pkt(), 0.0) == 0.0

    def test_validates_bound(self):
        with pytest.raises(ValueError):
            JitterChannel(-0.1)


class TestComposite:
    def test_delays_accumulate(self):
        ch = CompositeChannel([PerfectChannel(), JitterChannel(0.0)])
        assert ch.transit(pkt(), 0.0) == 0.0

    def test_any_stage_drop_drops(self):
        always_drop = BernoulliLossChannel(0.99, rng=random.Random(0))
        ch = CompositeChannel([PerfectChannel(), always_drop])
        outcomes = [ch.transit(pkt(), 0.0) for _ in range(100)]
        assert any(o is None for o in outcomes)

    def test_requires_stages(self):
        with pytest.raises(ValueError):
            CompositeChannel([])
