"""Kill-the-orchestrator chaos for the campaign layer.

The resume contract says the campaign process may die at ANY instant —
between scenarios, after artifacts are published but before their
checkpoint lands, while hung inside a checkpoint — and ``resume`` must
complete exactly the missing work with byte-identical tracked
artifacts.  These tests prove it with real process death: ``exit``
faults (``os._exit(13)``) at every one of the five campaign
checkpoints (four jobs + the report), plus a genuine ``SIGKILL`` while
the orchestrator is hung at a checkpoint.

All kills happen in subprocesses — an in-process ``os._exit`` would
take pytest down with it.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

# Written to disk and run as the campaign process.  Four tiny jobs over
# the same probe scenario (distinct scales so every job's artifacts
# differ), so the checkpoint sequence is: seq 1-4 = jobs, seq 5 = report.
CAMP_DRIVER = '''
import dataclasses, json, random, sys

from repro.api import Experiment
from repro.campaign import Campaign
from repro.harness.registry import register
from repro.harness.result import ScenarioResult


@dataclasses.dataclass
class CampResult(ScenarioResult):
    value: float


@register("camp_probe", grid={"seed": (0, 1)})
def camp_probe(seed: int = 0, scale: float = 1.0) -> CampResult:
    """Deterministic probe for campaign chaos tests."""
    return CampResult(value=round(random.Random(seed).random() * scale, 6))


def build():
    campaign = Campaign("chaos")
    for i, scale in enumerate((1.0, 2.0, 3.0, 4.0)):
        campaign.add(
            f"job{i}",
            Experiment("camp_probe").sweep(seed=(0, 1)).configure(scale=scale),
        )
    return campaign


mode, directory = sys.argv[1], sys.argv[2]
run = build().run(directory, resume=(mode == "resume"))
print(json.dumps({
    name: {"status": o.status, "restored": o.restored}
    for name, o in run.outcomes.items()
}), flush=True)
'''

N_JOBS = 4
N_CHECKPOINTS = N_JOBS + 1  # + the report


def driver_env(extra=None):
    env = {**os.environ,
           "PYTHONPATH": str(Path("src").resolve()),
           "PYTHONUNBUFFERED": "1"}
    env.pop("REPRO_FAULTS", None)  # never inherit ambient chaos
    if extra:
        env.update(extra)
    return env


def run_driver(script, mode, directory, *, env=None, check=True):
    proc = subprocess.run(
        [sys.executable, str(script), mode, str(directory)],
        env=env or driver_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True, timeout=120,
    )
    if check:
        assert proc.returncode == 0, proc.stdout
    return proc


def tracked_bytes(directory):
    """``{relpath: bytes}`` of every manifest-tracked artifact."""
    manifest = json.loads((Path(directory) / "MANIFEST.json").read_text())
    return {
        rel: (Path(directory) / rel).read_bytes()
        for rel in manifest["artifacts"]
    }


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run: the byte-identity oracle for every kill."""
    base = tmp_path_factory.mktemp("campaign_chaos")
    script = base / "camp_driver.py"
    script.write_text(CAMP_DRIVER)
    ref_dir = base / "ref"
    proc = run_driver(script, "run", ref_dir)
    payload = json.loads(proc.stdout.splitlines()[-1])
    assert all(o["status"] == "ok" for o in payload.values())
    return script, ref_dir


class TestKillAnywhereResume:
    @pytest.mark.parametrize("seq", range(1, N_CHECKPOINTS + 1))
    def test_exit_fault_at_every_checkpoint(self, tmp_path, reference, seq):
        """os._exit at checkpoint ``seq``: the artifacts for that step
        are already durable but its journal entry never lands — the
        adversarial instant.  Resume completes and every tracked
        artifact is byte-identical to the uninterrupted reference."""
        script, ref_dir = reference
        directory = tmp_path / "camp"
        plan = json.dumps([{
            "kind": "exit", "scenario": "campaign.checkpoint",
            "match": {"seq": seq},
        }])
        killed = run_driver(
            script, "run", directory,
            env=driver_env({"REPRO_FAULTS": plan}), check=False,
        )
        assert killed.returncode == 13, killed.stdout

        # the journal holds exactly the checkpoints that completed
        from repro.campaign import CampaignJournal

        state = CampaignJournal.read(directory / "journal.jsonl")
        assert len(state["scenarios"]) == min(seq - 1, N_JOBS)
        assert not state["report_done"]

        resumed = run_driver(script, "resume", directory)
        payload = json.loads(resumed.stdout.splitlines()[-1])
        assert all(o["status"] == "ok" for o in payload.values())
        n_restored = sum(1 for o in payload.values() if o["restored"])
        assert n_restored == min(seq - 1, N_JOBS)
        assert tracked_bytes(directory) == tracked_bytes(ref_dir)

    def test_sigkill_while_hung_at_a_checkpoint(self, tmp_path, reference):
        """A genuine SIGKILL (no cleanup, no atexit, no flush beyond
        what already hit disk) against an orchestrator hung at the
        third checkpoint."""
        script, ref_dir = reference
        directory = tmp_path / "camp"
        journal = directory / "journal.jsonl"
        plan = json.dumps([{
            "kind": "hang", "scenario": "campaign.checkpoint",
            "match": {"seq": 3}, "seconds": 120,
        }])
        proc = subprocess.Popen(
            [sys.executable, str(script), "run", str(directory)],
            env=driver_env({"REPRO_FAULTS": plan}),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            # wait until the first two checkpoints are journaled (header
            # + 2 entries) — the process is then hanging inside seq 3
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if journal.exists() and len(
                    journal.read_text().splitlines()
                ) >= 3:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("campaign never journaled its first two jobs")
            time.sleep(0.2)  # let the fsync land, then no mercy
            proc.send_signal(signal.SIGKILL)
            proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == -signal.SIGKILL

        resumed = run_driver(script, "resume", directory)
        payload = json.loads(resumed.stdout.splitlines()[-1])
        assert all(o["status"] == "ok" for o in payload.values())
        assert payload["job0"]["restored"] and payload["job1"]["restored"]
        assert not payload["job2"]["restored"]  # hung before its checkpoint
        assert tracked_bytes(directory) == tracked_bytes(ref_dir)

    def test_verify_passes_after_every_resume(self, tmp_path, reference):
        """End-to-end integrity: kill, resume, then ``campaign verify``
        (the CLI, exit code and all) over the healed directory."""
        script, ref_dir = reference
        directory = tmp_path / "camp"
        plan = json.dumps([{
            "kind": "exit", "scenario": "campaign.checkpoint",
            "match": {"seq": 2},
        }])
        killed = run_driver(
            script, "run", directory,
            env=driver_env({"REPRO_FAULTS": plan}), check=False,
        )
        assert killed.returncode == 13
        run_driver(script, "resume", directory)
        verify = subprocess.run(
            [sys.executable, "-c",
             "import sys; from repro.harness.cli import main; "
             "sys.exit(main(sys.argv[1:]))",
             "campaign", "verify", str(directory)],
            env=driver_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True, timeout=60,
        )
        assert verify.returncode == 0, verify.stdout
        assert "intact" in verify.stdout
