"""Unit tests for metrics: stats, recorder, cost meters."""

import pytest

from repro.metrics.cost import CostMeter, NullMeter
from repro.metrics.recorder import FlowRecorder
from repro.metrics.stats import (
    coefficient_of_variation,
    jain_index,
    mean,
    normalized_throughput,
    percentile,
    stddev,
    throughput_series,
)
from repro.sim.packet import Packet


def pkt(size=1000, created=0.0):
    return Packet(src="a", dst="b", flow_id="f", size=size, created_at=created)


class TestStats:
    def test_mean_and_stddev(self):
        assert mean([1, 2, 3]) == 2
        assert mean([]) == 0
        assert stddev([5, 5, 5]) == 0
        assert stddev([2, 4]) == 1.0

    def test_cov(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([2, 4]) == pytest.approx(1 / 3)

    def test_jain_perfect_fairness(self):
        assert jain_index([10, 10, 10]) == pytest.approx(1.0)

    def test_jain_total_unfairness(self):
        assert jain_index([30, 0, 0]) == pytest.approx(1 / 3)

    def test_jain_requires_values(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile([7.0], 95) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_throughput_series(self):
        events = [(0.5, 100), (1.5, 200), (1.9, 100)]
        series = throughput_series(events, bin_width=1.0, end=3.0)
        assert series == [100.0, 300.0, 0.0]

    def test_percentile_interpolation_stays_within_range(self):
        # regression: hypothesis falsifying example — the interpolation
        # of two equal denormals landed 1 ULP below min(values)
        values = [7.135396919844353e-221] * 2
        result = percentile(values, 4.5)
        assert min(values) <= result <= max(values)
        assert result == values[0]

    def test_throughput_series_bin_edge_rounding(self):
        # regression: t just below end used to index bins[n_bins]
        # because t / bin_width rounds up (11.399999999999999 / 0.3
        # == 38.0 exactly in binary floating point)
        t = 11.399999999999999
        series = throughput_series([(t, 300)], bin_width=0.3, end=11.4)
        assert len(series) == 38
        assert series[-1] == pytest.approx(1000.0)
        assert sum(series) == pytest.approx(1000.0)

    def test_normalized_throughput(self):
        assert normalized_throughput(2.0, 4.0) == 0.5
        with pytest.raises(ValueError):
            normalized_throughput(1.0, 0.0)


class TestFlowRecorder:
    def test_mean_rate_over_window(self):
        rec = FlowRecorder()
        rec.record(1.0, pkt(size=1000))
        rec.record(2.0, pkt(size=1000))
        rec.record(3.0, pkt(size=1000))
        # 2000 bytes in (1, 3]
        assert rec.mean_rate(start=1.0, end=3.0) == pytest.approx(1000.0)
        assert rec.mean_rate_bps(start=1.0, end=3.0) == pytest.approx(8000.0)

    def test_empty_recorder(self):
        rec = FlowRecorder()
        assert rec.mean_rate() == 0.0
        assert rec.series(1.0) == []

    def test_latencies(self):
        rec = FlowRecorder()
        rec.record(2.0, pkt(created=1.5))
        assert rec.latencies == [0.5]

    def test_series_binning(self):
        rec = FlowRecorder()
        rec.record(0.2, pkt(size=500))
        rec.record(1.7, pkt(size=1500))
        series = rec.series(1.0, end=2.0)
        assert series == [500.0, 1500.0]

    def test_series_validates_bin(self):
        rec = FlowRecorder()
        with pytest.raises(ValueError):
            rec.series(0.0)

    def test_series_rejects_degenerate_bins(self):
        rec = FlowRecorder()
        rec.record(1.0, pkt(size=100))
        with pytest.raises(ValueError):
            rec.series(-0.5)
        with pytest.raises(ValueError):
            rec.series(float("inf"))
        with pytest.raises(ValueError):
            rec.series(float("nan"))

    def test_series_bin_edges_survive_reciprocal_multiply(self):
        # series() buckets via one multiply by the precomputed
        # 1/bin_width; events sitting exactly on representable bucket
        # edges must land in the same bin as floor(t / bin_width).
        # 0.2 is the adversarial width: 0.6 * (1/0.2) rounds to 3.0
        # while 0.6 / 0.2 rounds below it.
        rec = FlowRecorder()
        for k in range(1, 8):
            rec.record(k * 0.1, pkt(size=100))
        series = rec.series(0.2, end=0.8)
        assert sum(series) * 0.2 == pytest.approx(700.0)
        for t, width in [(0.6, 0.2), (0.3, 0.1), (2.5, 0.5), (0.7, 0.07)]:
            one = FlowRecorder()
            one.record(t, pkt(size=100))
            series = one.series(width, end=t + width)
            assert sum(series) * width == pytest.approx(100.0)
            assert series[int(t / width)] > 0.0

    def test_series_bin_wider_than_trace(self):
        rec = FlowRecorder()
        rec.record(0.5, pkt(size=400))
        assert rec.series(10.0) == [40.0]

    def test_series_end_before_last_event_drops_tail(self):
        rec = FlowRecorder()
        rec.record(0.5, pkt(size=400))
        rec.record(5.0, pkt(size=400))
        assert rec.series(1.0, end=1.0) == [400.0]

    def test_mean_rate_bisect_matches_scan(self):
        # the prefix-sum fast path must equal the definitional scan for
        # every (start, end] window, including edges on event times
        rec = FlowRecorder()
        times = [0.1, 0.5, 0.5, 1.0, 2.5, 2.5, 3.0]
        for i, t in enumerate(times):
            rec.record(t, pkt(size=100 * (i + 1)))
        for start in [0.0, 0.1, 0.5, 0.9, 2.5, 3.0, 4.0]:
            for end in [0.1, 0.5, 1.0, 2.5, 3.0, 5.0, None]:
                got = rec.mean_rate(start, end)
                e = end if end is not None else times[-1]
                span = e - start
                want = (
                    sum(s for t, s in rec.events if start < t <= e) / span
                    if span > 0
                    else 0.0
                )
                assert got == want, (start, end)

    def test_mean_rate_out_of_order_recording_falls_back(self):
        rec = FlowRecorder()
        rec.record(2.0, pkt(size=100))
        rec.record(1.0, pkt(size=700))  # hand-built, unordered
        assert rec.mean_rate(0.0, 2.0) == pytest.approx(800.0 / 2.0)
        assert rec.mean_rate(1.5, 2.0) == pytest.approx(100.0 / 0.5)

    def test_counters(self):
        rec = FlowRecorder()
        rec.record(0.0, pkt())
        rec.record_bytes(1.0, 300, latency=0.1)
        assert rec.delivered_packets == 2
        assert rec.delivered_bytes == 1300
        assert rec.first_time == 0.0 and rec.last_time == 1.0


class TestCostMeter:
    def test_charges_accumulate(self):
        m = CostMeter("x")
        m.charge(3)
        m.charge()
        assert m.ops == 4 and m.events == 2
        assert m.ops_per_event() == 2.0

    def test_memory_high_water_mark(self):
        m = CostMeter()
        m.alloc(100)
        m.alloc(50)
        m.free(120)
        assert m.resident_bytes == 30
        assert m.peak_bytes == 150

    def test_free_floors_at_zero(self):
        m = CostMeter()
        m.free(10)
        assert m.resident_bytes == 0

    def test_set_resident(self):
        m = CostMeter()
        m.set_resident(500)
        m.set_resident(200)
        assert m.resident_bytes == 200
        assert m.peak_bytes == 500

    def test_reset(self):
        m = CostMeter()
        m.charge(5)
        m.alloc(10)
        m.reset()
        assert m.ops == 0 and m.peak_bytes == 0

    def test_null_meter_ignores_everything(self):
        m = NullMeter()
        m.charge(100)
        m.alloc(100)
        m.set_resident(9)
        assert m.ops == 0 and m.resident_bytes == 0
