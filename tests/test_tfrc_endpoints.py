"""Behavioural tests for the stock RFC 3448 TFRC agents."""

import pytest

from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.queues import DropTailQueue
from repro.sim.topology import chain, dumbbell
from repro.tfrc.receiver import TfrcReceiver
from repro.tfrc.sender import TfrcSender


def tfrc_pair(sim, src, dst, flow="f", recorder=None):
    snd = TfrcSender(sim, dst=dst.name).attach(src, flow)
    rcv = TfrcReceiver(sim, recorder=recorder).attach(dst, flow)
    return snd, rcv


class TestSteadyState:
    def test_saturates_clean_bottleneck(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=2e6, bottleneck_delay=0.02,
                     bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=25))
        rec = FlowRecorder()
        snd, _ = tfrc_pair(sim, d.net.node("s0"), d.net.node("d0"), recorder=rec)
        snd.start()
        sim.run(until=30)
        assert rec.mean_rate_bps(10, 30) == pytest.approx(2e6, rel=0.05)

    def test_rate_respects_equation_under_loss(self):
        from repro.tfrc.equation import tcp_throughput

        sim = Simulator(seed=3)
        loss = 0.02
        topo = chain(
            sim, n_hops=1, rate=10e6, delay=0.05,
            channel_factory=lambda: BernoulliLossChannel(loss, rng=sim.rng("l")),
        )
        rec = FlowRecorder()
        snd, rcv = tfrc_pair(sim, topo.first, topo.last, recorder=rec)
        snd.start()
        sim.run(until=60)
        measured = rec.mean_rate(20, 60)  # bytes/s
        # rtt ~ 0.1 s + queueing; p is an RFC loss-event rate, slightly
        # below the raw 2% packet loss.  Expect the same order of
        # magnitude as the equation's prediction.
        predicted = tcp_throughput(1000, snd.controller.rtt.rtt, loss)
        assert measured == pytest.approx(predicted, rel=0.6)

    def test_no_feedback_halves_rate(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=2e6, bottleneck_delay=0.02)
        snd, rcv = tfrc_pair(sim, d.net.node("s0"), d.net.node("d0"))
        snd.start()
        sim.run(until=5)
        rate_before = snd.rate
        rcv.stop()
        d.net.node("d0").unbind("f")
        sink_drops = []
        d.net.node("d0").on_unroutable = sink_drops.append

        class Blackhole:
            def receive(self, packet):
                pass

        bh = Blackhole()
        d.net.node("d0").bind("f", bh)
        sim.run(until=15)
        assert snd.controller.timeout_count > 0
        assert snd.rate < rate_before / 2

    def test_sender_stop_cancels_events(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1)
        snd, rcv = tfrc_pair(sim, d.net.node("s0"), d.net.node("d0"))
        snd.start()
        sim.run(until=2)
        snd.stop()
        rcv.stop()
        sim.run(until=2.5)
        sent_at_stop = snd.sent_packets
        sim.run(until=10)
        assert snd.sent_packets == sent_at_stop


class TestFeedback:
    def test_receiver_reports_about_once_per_rtt(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=2e6, bottleneck_delay=0.05)
        rec = FlowRecorder()
        snd, rcv = tfrc_pair(sim, d.net.node("s0"), d.net.node("d0"), recorder=rec)
        snd.start()
        sim.run(until=20)
        rtt = snd.controller.rtt.rtt
        expected_reports = 20 / rtt
        assert rcv.feedback_sent == pytest.approx(expected_reports, rel=0.5)

    def test_receiver_quiet_without_data(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1)
        snd, rcv = tfrc_pair(sim, d.net.node("s0"), d.net.node("d0"))
        snd.start()
        sim.run(until=3)
        snd.stop()
        sim.run(until=3.5)
        sent_after_stop = rcv.feedback_sent
        sim.run(until=20)
        assert rcv.feedback_sent <= sent_after_stop + 1

    def test_rtt_estimate_close_to_real(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=5e6,
                     bottleneck_delay=0.04, access_delay=0.005)
        snd, _ = tfrc_pair(sim, d.net.node("s0"), d.net.node("d0"))
        snd.start()
        sim.run(until=10)
        base_rtt = 2 * (0.04 + 2 * 0.005)
        assert snd.controller.rtt.rtt >= base_rtt * 0.9
        assert snd.controller.rtt.rtt <= base_rtt * 2.5  # plus queueing

    def test_loss_event_rate_reported(self):
        sim = Simulator(seed=2)
        topo = chain(
            sim, n_hops=1, rate=2e6, delay=0.02,
            channel_factory=lambda: BernoulliLossChannel(0.03, rng=sim.rng("l")),
        )
        snd, rcv = tfrc_pair(sim, topo.first, topo.last)
        snd.start()
        sim.run(until=30)
        assert 0.001 < rcv.loss_event_rate < 0.2
        assert snd.controller.p == pytest.approx(rcv.loss_event_rate, rel=0.5)


class TestSmoothness:
    def test_tfrc_smoother_than_tcp(self):
        from repro.harness.experiments.smoothness import smoothness_scenario

        tfrc = smoothness_scenario("tfrc", duration=40, warmup=10, seed=4)
        tcp = smoothness_scenario("tcp", duration=40, warmup=10, seed=4)
        assert tfrc.cov < tcp.cov
