"""Topology generators: pinned link order, shapes, buildability."""

import pytest

from repro.sim.engine import Simulator
from repro.topo import (
    ScenarioSpec,
    access_star_endpoints,
    access_star_spec,
    build,
    fat_tree_endpoints,
    fat_tree_spec,
    isp_chain_endpoints,
    isp_chain_spec,
    random_access_star_spec,
)
from repro.topo.specs import FlowSpec


class TestAccessStar:
    def test_pinned_link_order(self):
        spec = access_star_spec(3)
        assert [(l.src, l.dst) for l in spec.links] == [
            ("gw", "srv"), ("h0", "gw"), ("h1", "gw"), ("h2", "gw"),
        ]

    def test_bottleneck_is_rio(self):
        spec = access_star_spec(2, bottleneck_bps=5e6)
        assert spec.links[0].queue.kind == "rio"
        assert spec.links[0].rate_bps == 5e6
        assert all(l.queue.kind == "droptail" for l in spec.links[1:])

    def test_endpoints_match_hosts(self):
        assert access_star_endpoints(3) == (
            ("h0", "srv"), ("h1", "srv"), ("h2", "srv"),
        )

    def test_rejects_empty_star(self):
        with pytest.raises(ValueError, match="at least one host"):
            access_star_spec(0)

    def test_generated_spec_is_deterministic(self):
        assert access_star_spec(5) == access_star_spec(5)


class TestRandomAccessStar:
    def test_same_shape_and_pinned_order_as_uniform_star(self):
        spec = random_access_star_spec(3, seed=1)
        assert [(l.src, l.dst) for l in spec.links] == [
            ("gw", "srv"), ("h0", "gw"), ("h1", "gw"), ("h2", "gw"),
        ]
        assert spec.links[0].queue.kind == "rio"

    def test_sampled_links_stay_in_range(self):
        spec = random_access_star_spec(
            20,
            seed=7,
            access_rate_range=(5e6, 50e6),
            access_delay_range=(0.002, 0.01),
        )
        rates = [l.rate_bps for l in spec.links[1:]]
        delays = [l.delay for l in spec.links[1:]]
        assert all(5e6 <= r <= 50e6 for r in rates)
        assert all(0.002 <= d <= 0.01 for d in delays)
        # actually heterogeneous, not a constant draw
        assert len(set(rates)) > 1
        assert len(set(delays)) > 1

    def test_pure_function_of_seed(self):
        assert random_access_star_spec(5, seed=3) == random_access_star_spec(
            5, seed=3
        )
        assert random_access_star_spec(5, seed=3) != random_access_star_spec(
            5, seed=4
        )

    def test_independent_streams_for_rates_and_delays(self):
        # widening the delay range must not reshuffle the sampled rates
        a = random_access_star_spec(6, seed=2)
        b = random_access_star_spec(
            6, seed=2, access_delay_range=(0.001, 0.2)
        )
        assert [l.rate_bps for l in a.links] == [l.rate_bps for l in b.links]

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError, match="access_rate_range"):
            random_access_star_spec(3, seed=0, access_rate_range=(5e6, 1e6))
        with pytest.raises(ValueError, match="access_delay_range"):
            random_access_star_spec(
                3, seed=0, access_delay_range=(0.0, 0.01)
            )
        with pytest.raises(ValueError, match="at least one host"):
            random_access_star_spec(0, seed=0)

    def test_star_endpoints_apply(self):
        spec = random_access_star_spec(3, seed=1)
        hosts = {l.src for l in spec.links[1:]}
        assert {src for src, _ in access_star_endpoints(3)} == hosts


class TestIspChain:
    def test_pinned_link_order(self):
        spec = isp_chain_spec(2, hosts_per_pop=2)
        assert [(l.src, l.dst) for l in spec.links] == [
            ("r0", "r1"), ("r1", "r2"),
            ("p0h0", "r0"), ("p0h1", "r0"),
            ("p1h0", "r1"), ("p1h1", "r1"),
            ("p2h0", "r2"), ("p2h1", "r2"),
        ]

    def test_backbone_is_rio(self):
        spec = isp_chain_spec(3)
        assert all(l.queue.kind == "rio" for l in spec.links[:3])

    def test_endpoints_per_hop_then_long_haul(self):
        assert isp_chain_endpoints(2, hosts_per_pop=1) == (
            ("p0h0", "p1h0"), ("p1h0", "p2h0"), ("p0h0", "p2h0"),
        )

    def test_single_hop_has_no_long_haul_pairs(self):
        assert isp_chain_endpoints(1) == (("p0h0", "p1h0"),)


class TestFatTree:
    def test_pinned_link_order(self):
        spec = fat_tree_spec(2, hosts_per_pod=2)
        assert [(l.src, l.dst) for l in spec.links] == [
            ("core", "agg0"), ("core", "agg1"),
            ("p0h0", "agg0"), ("p0h1", "agg0"),
            ("p1h0", "agg1"), ("p1h1", "agg1"),
        ]

    def test_core_links_are_rio(self):
        spec = fat_tree_spec(3, hosts_per_pod=1)
        assert all(l.queue.kind == "rio" for l in spec.links[:3])

    def test_endpoints_cross_pods(self):
        assert fat_tree_endpoints(2, hosts_per_pod=1) == (
            ("p0h0", "p1h0"), ("p1h0", "p0h0"),
        )

    def test_rejects_single_pod(self):
        with pytest.raises(ValueError, match="at least two pods"):
            fat_tree_spec(1)


class TestGeneratedTopologiesBuild:
    @pytest.mark.parametrize(
        "topology,flow",
        [
            (access_star_spec(3), ("h1", "srv")),
            (isp_chain_spec(2, hosts_per_pop=1), ("p0h0", "p2h0")),
            (fat_tree_spec(2, hosts_per_pod=1), ("p0h0", "p1h0")),
        ],
        ids=["access_star", "isp_chain", "fat_tree"],
    )
    def test_flow_delivers_across_generated_shape(self, topology, flow):
        sim = Simulator(seed=0)
        src, dst = flow
        built = build(
            sim,
            ScenarioSpec(
                name="gen",
                topology=topology,
                flows=(FlowSpec("f", src, dst, transport="tcp"),),
            ),
        )
        sim.run(until=2.0)
        assert built.recorder("f").delivered_bytes > 0
