"""The campaign layer: spec round-trips, durable layout, checkpoint
journal, resume semantics, graceful degradation, verify/quarantine and
the CLI subcommands.

The kill-the-orchestrator chaos harness (real process death at every
checkpoint, byte-identity of resumed artifacts) lives in
``tests/test_campaign_chaos.py``; this file covers the same contracts
in-process where a fault can be injected without dying.
"""

import dataclasses
import json
import random

import pytest

from repro.api import Experiment
from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignJournal,
    CampaignSpec,
    CampaignStore,
    JobSpec,
    load_spec,
    resume_campaign,
    verify_campaign,
    write_report,
)
from repro.harness.cli import main as cli_main
from repro.harness.faults import FaultPlan, FaultSpec, InjectedFault
from repro.harness.registry import register
from repro.harness.result import ScenarioResult


@dataclasses.dataclass
class ProbeResult(ScenarioResult):
    value: float


@register("campaign_probe", grid={"seed": (0, 1)})
def campaign_probe(seed: int = 0, scale: float = 1.0,
                   fail_on: int = -1) -> ProbeResult:
    """Deterministic probe for campaign tests."""
    if seed == fail_on:
        raise ValueError(f"injected cell failure for seed {seed}")
    return ProbeResult(value=round(random.Random(seed).random() * scale, 6))


def two_job_campaign() -> Campaign:
    return (
        Campaign("unit")
        .add("a", Experiment("campaign_probe").sweep(seed=(0, 1)).configure(scale=2.0))
        .add("b", Experiment("campaign_probe").sweep(seed=(0, 1, 2)))
    )


def tracked_bytes(directory):
    """``{relpath: bytes}`` of every manifest-tracked artifact."""
    manifest = json.loads((directory / "MANIFEST.json").read_text())
    return {
        rel: (directory / rel).read_bytes()
        for rel in manifest["artifacts"]
    }


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
class TestSpec:
    def test_jobspec_round_trips_an_experiment(self):
        exp = (
            Experiment("campaign_probe")
            .sweep(seed=(0, 1, 2))
            .configure(scale=3.0)
            .workers(2)
            .retries(1)
            .timeout(30.0)
        )
        job = JobSpec.from_experiment("j", exp)
        assert job.experiment().describe() == exp.describe()

    def test_campaign_spec_json_round_trip(self):
        spec = two_job_campaign().spec
        clone = CampaignSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_load_spec_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(two_job_campaign().spec.to_json()))
        assert load_spec(path) == two_job_campaign().spec

    def test_spec_hash_ignores_execution_tuning(self):
        base = Experiment("campaign_probe").sweep(seed=(0, 1))
        tuned = (
            Experiment("campaign_probe").sweep(seed=(0, 1))
            .workers(8).retries(3).timeout(5.0)
        )
        h1 = Campaign("c").add("j", base).spec.spec_hash()
        h2 = Campaign("c").add("j", tuned).spec.spec_hash()
        assert h1 == h2

    def test_spec_hash_tracks_identity(self):
        h1 = Campaign("c").add(
            "j", Experiment("campaign_probe").sweep(seed=(0, 1))
        ).spec.spec_hash()
        h2 = Campaign("c").add(
            "j", Experiment("campaign_probe").sweep(seed=(0, 1, 2))
        ).spec.spec_hash()
        assert h1 != h2

    def test_write_spec_preserves_param_order(self, tmp_path):
        """campaign.json must keep grid/base key order: resume rebuilds
        jobs from it, and sweep param order decides CSV/table column
        order — alphabetizing it would break resume byte-identity."""
        job = JobSpec(
            name="j", scenario="campaign_probe",
            grid=(("seed", (0, 1)),),
            base=(("scale", 2.0), ("fail_on", -1)),  # not alphabetical
        )
        spec = CampaignSpec(name="order", jobs=(job,))
        store = CampaignStore(tmp_path)
        store.write_spec(spec, {})
        assert store.read_spec() == spec

    def test_duplicate_job_names_rejected(self):
        campaign = Campaign("c").add("j", Experiment("campaign_probe"))
        with pytest.raises(CampaignError, match="duplicate"):
            campaign.add("j", Experiment("campaign_probe"))

    def test_unsafe_job_name_rejected(self):
        with pytest.raises(CampaignError, match="filesystem-safe"):
            JobSpec(name="../escape", scenario="campaign_probe")

    def test_on_failure_raise_rejected(self):
        with pytest.raises(CampaignError, match="on_failure"):
            JobSpec(name="j", scenario="campaign_probe", on_failure="raise")

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(CampaignError, match="unknown key"):
            JobSpec.from_json({"name": "j", "scenario": "s", "typo": 1})


# ----------------------------------------------------------------------
# durable layout + provenance
# ----------------------------------------------------------------------
class TestLayout:
    def test_run_produces_the_full_layout(self, tmp_path):
        directory = tmp_path / "camp"
        run = two_job_campaign().run(directory)
        assert run.ok
        for rel in (
            "campaign.json", "journal.jsonl", "MANIFEST.json", "report.md",
            "campaign.spans.jsonl",
            "scenarios/a/results.csv", "scenarios/a/results.json",
            "scenarios/a/table.txt", "scenarios/a/spans.jsonl",
            "scenarios/b/table.txt",
        ):
            assert (directory / rel).exists(), rel

    def test_spec_document_carries_provenance(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "42")
        monkeypatch.setenv("REPRO_FAULTS", '{"faults": []}')
        directory = tmp_path / "camp"
        spec = two_job_campaign().spec
        two_job_campaign().run(directory)
        doc = json.loads((directory / "campaign.json").read_text())
        assert doc["name"] == "unit"
        assert doc["spec_hash"] == spec.spec_hash()
        prov = doc["provenance"]
        from repro.harness.runner import code_version

        assert prov["code_version"] == code_version()
        assert prov["env"]["REPRO_TEST_KNOB"] == "42"
        # fault plans are chaos tooling, never provenance: a chaos run's
        # campaign.json must be byte-identical to a fault-free run's
        assert "REPRO_FAULTS" not in prov["env"]

    def test_journal_records_every_checkpoint(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        state = CampaignJournal.read(directory / "journal.jsonl")
        assert state["header"]["campaign"] == "unit"
        assert state["scenarios"]["a"]["status"] == "ok"
        assert state["scenarios"]["b"]["status"] == "ok"
        assert state["scenarios"]["b"]["cells"] == 3
        assert state["report_done"]
        assert state["max_seq"] == 3  # two scenarios + the report

    def test_manifest_tracks_only_deterministic_artifacts(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        tracked = set(tracked_bytes(directory))
        assert "campaign.json" in tracked
        assert "report.md" in tracked
        # journals and span files are execution metadata: timestamps and
        # completion order make them run-specific, so they are not held
        # to the byte-identity contract
        assert not any("journal" in rel or "spans" in rel for rel in tracked)


# ----------------------------------------------------------------------
# resume semantics
# ----------------------------------------------------------------------
class TestResume:
    def test_interrupted_campaign_resumes_byte_identically(self, tmp_path):
        reference = tmp_path / "ref"
        two_job_campaign().run(reference)
        # die at checkpoint 2 (job b): job a is durable, b never lands
        interrupted = tmp_path / "chaos"
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", scenario="campaign.checkpoint",
                      match={"seq": 2}),
        ))
        with pytest.raises(InjectedFault):
            two_job_campaign().run(interrupted, faults=plan)
        state = CampaignJournal.read(interrupted / "journal.jsonl")
        assert set(state["scenarios"]) == {"a"}
        run = two_job_campaign().run(interrupted, resume=True)
        assert run.ok
        assert run.outcomes["a"].restored
        assert not run.outcomes["b"].restored
        assert tracked_bytes(interrupted) == tracked_bytes(reference)

    def test_corrupt_checkpoint_fault_leaves_loadable_journal(self, tmp_path):
        directory = tmp_path / "camp"
        plan = FaultPlan(faults=(
            FaultSpec(kind="corrupt", scenario="campaign.checkpoint",
                      match={"seq": 1}),
        ))
        run = two_job_campaign().run(directory, faults=plan)
        assert run.ok
        # the torn garbage line is on disk, terminated by the next entry...
        raw = (directory / "journal.jsonl").read_text()
        assert '{"seq": \n' in raw
        # ...and the loader skips it
        state = CampaignJournal.read(directory / "journal.jsonl")
        assert state["scenarios"]["a"]["status"] == "ok"
        resumed = two_job_campaign().run(directory, resume=True)
        assert all(o.restored for o in resumed.outcomes.values())

    def test_resume_reruns_job_with_missing_artifact(self, tmp_path):
        directory = tmp_path / "camp"
        reference = two_job_campaign().run(directory)
        assert reference.ok
        before = tracked_bytes(directory)
        (directory / "scenarios" / "a" / "table.txt").unlink()
        run = two_job_campaign().run(directory, resume=True)
        assert not run.outcomes["a"].restored  # self-healed by re-run
        assert run.outcomes["b"].restored
        assert tracked_bytes(directory) == before

    def test_resume_needs_an_existing_campaign(self, tmp_path):
        with pytest.raises(CampaignError, match="nothing to resume"):
            two_job_campaign().run(tmp_path / "void", resume=True)

    def test_changed_spec_refuses_the_directory(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        other = Campaign("unit").add(
            "a", Experiment("campaign_probe").sweep(seed=(5, 6))
        )
        with pytest.raises(CampaignError, match="spec hash"):
            other.run(directory, resume=True)

    def test_changed_code_refuses_to_resume(self, tmp_path, monkeypatch):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        from repro.campaign import runner as campaign_runner

        monkeypatch.setattr(
            campaign_runner, "code_version", lambda: "deadbeefdeadbeef"
        )
        with pytest.raises(CampaignError, match="code changed"):
            two_job_campaign().run(directory, resume=True)

    def test_resume_campaign_rebuilds_from_spec_file(self, tmp_path):
        directory = tmp_path / "camp"
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", scenario="campaign.checkpoint",
                      match={"seq": 1}),
        ))
        with pytest.raises(InjectedFault):
            two_job_campaign().run(directory, faults=plan)
        run = resume_campaign(directory)
        assert run.ok and set(run.outcomes) == {"a", "b"}

    def test_custom_table_blocks_spec_file_resume(self, tmp_path):
        directory = tmp_path / "camp"
        campaign = Campaign("custom").add(
            "a",
            Experiment("campaign_probe").sweep(seed=(0,)),
            table=lambda rs: "custom table\n",
        )
        campaign.run(directory)
        assert (directory / "scenarios" / "a" / "table.txt").read_text() == (
            "custom table\n"
        )
        with pytest.raises(CampaignError, match="custom table"):
            resume_campaign(directory)
        # ...but the defining script itself can resume
        resumed = campaign.run(directory, resume=True)
        assert resumed.outcomes["a"].restored


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def degraded_campaign(self) -> Campaign:
        campaign = Campaign("degraded")
        campaign.add("good", Experiment("campaign_probe").sweep(seed=(0, 1)))
        # a job whose scenario does not exist fails terminally at run time
        campaign._jobs.append(JobSpec(name="doomed", scenario="no_such_scenario"))
        campaign.add("tail", Experiment("campaign_probe").sweep(seed=(2,)))
        return campaign

    def test_terminal_job_failure_does_not_stop_the_campaign(self, tmp_path):
        directory = tmp_path / "camp"
        run = self.degraded_campaign().run(directory)
        assert not run.ok
        assert run.outcomes["good"].status == "ok"
        assert run.outcomes["doomed"].status == "failed"
        assert run.outcomes["tail"].status == "ok"  # ran despite the failure
        failure = json.loads(
            (directory / "scenarios" / "doomed" / "failure.json").read_text()
        )
        assert failure["error"] == "KeyError"
        assert "no_such_scenario" in failure["message"]

    def test_report_carries_an_explicit_coverage_section(self, tmp_path):
        directory = tmp_path / "camp"
        self.degraded_campaign().run(directory)
        report = (directory / "report.md").read_text()
        assert "Coverage is INCOMPLETE" in report
        assert "| doomed | no_such_scenario | failed |" in report
        assert "**FAILED**" in report
        # surviving jobs still render their tables
        assert "### good" in report and "value" in report

    def test_failed_cells_degrade_to_partial_coverage(self, tmp_path):
        directory = tmp_path / "camp"
        campaign = Campaign("partial").add(
            "p",
            Experiment("campaign_probe")
            .sweep(seed=(0, 1, 2))
            .configure(fail_on=1),
        )
        run = campaign.run(directory)
        outcome = run.outcomes["p"]
        assert outcome.status == "partial"
        assert (outcome.cells, outcome.ok_cells) == (3, 2)
        report = (directory / "report.md").read_text()
        assert "Partial coverage: 2 of 3 cells completed." in report
        assert "| p | campaign_probe | partial | 3 | 67% |" in report

    def test_resume_retries_failed_jobs_but_keeps_partial(self, tmp_path):
        directory = tmp_path / "camp"
        self.degraded_campaign().run(directory)
        run = self.degraded_campaign().run(directory, resume=True)
        # ok jobs restore from the checkpoint; the failed one re-runs
        assert run.outcomes["good"].restored
        assert run.outcomes["tail"].restored
        assert not run.outcomes["doomed"].restored
        assert run.outcomes["doomed"].status == "failed"


# ----------------------------------------------------------------------
# verify + quarantine
# ----------------------------------------------------------------------
class TestVerify:
    def test_intact_campaign_verifies_clean(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        report = verify_campaign(directory)
        assert report.ok and report.checked >= 8

    def test_corrupt_artifact_is_quarantined_not_deleted(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        victim = directory / "scenarios" / "a" / "results.csv"
        original = victim.read_bytes()
        victim.write_bytes(original + b"bitrot")
        report = verify_campaign(directory)
        assert not report.ok
        (finding,) = report.findings
        assert finding.problem == "corrupt"
        assert finding.artifact == "scenarios/a/results.csv"
        quarantined = directory / finding.quarantined_to
        assert quarantined.read_bytes() == original + b"bitrot"  # evidence kept
        assert not victim.exists()  # moved aside, so resume regenerates it

    def test_quarantine_then_resume_restores_byte_identity(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        before = tracked_bytes(directory)
        victim = directory / "scenarios" / "b" / "table.txt"
        victim.write_text("evil")
        assert not verify_campaign(directory).ok
        two_job_campaign().run(directory, resume=True)
        assert verify_campaign(directory).ok
        assert tracked_bytes(directory) == before

    def test_missing_artifact_is_reported(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        (directory / "report.md").unlink()
        report = verify_campaign(directory)
        (finding,) = report.findings
        assert finding.problem == "missing" and finding.artifact == "report.md"

    def test_no_quarantine_mode_reports_without_moving(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        victim = directory / "scenarios" / "a" / "table.txt"
        victim.write_text("evil")
        report = verify_campaign(directory, quarantine=False)
        assert not report.ok
        assert victim.exists() and not (directory / "quarantine").exists()

    def test_verify_rejects_a_non_campaign_directory(self, tmp_path):
        with pytest.raises(CampaignError, match="no campaign"):
            verify_campaign(tmp_path)


# ----------------------------------------------------------------------
# report + observability
# ----------------------------------------------------------------------
class TestReportAndObs:
    def test_write_report_regenerates_identical_text(self, tmp_path):
        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        on_disk = (directory / "report.md").read_text()
        assert write_report(directory) == on_disk
        assert (directory / "report.md").read_text() == on_disk

    def test_campaign_spans_cover_jobs_and_report(self, tmp_path):
        from repro.obs.spans import read_spans

        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        events = read_spans(str(directory / "campaign.spans.jsonl"))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign"
        assert kinds.count("report") == 1
        job_events = [e for e in events if e["event"] == "job"]
        assert {e["name"] for e in job_events} == {"a", "b"}
        # per-job sweep spans landed in the scenario directories
        sweep = read_spans(str(directory / "scenarios" / "a" / "spans.jsonl"))
        assert sweep[0]["event"] == "sweep"
        assert sum(1 for e in sweep if e["event"] == "done") == 2

    def test_resume_appends_spans_instead_of_truncating(self, tmp_path):
        from repro.obs.spans import read_spans

        directory = tmp_path / "camp"
        two_job_campaign().run(directory)
        two_job_campaign().run(directory, resume=True)
        events = read_spans(str(directory / "campaign.spans.jsonl"))
        headers = [e for e in events if e["event"] == "campaign"]
        assert len(headers) == 2
        assert headers[0]["resumed"] is False
        assert headers[1]["resumed"] is True

    def test_job_outcomes_land_on_the_metrics_registry(self, tmp_path):
        from repro.obs.metrics import (
            disable_metrics,
            enable_metrics,
            registry,
            reset_metrics,
        )

        enable_metrics()
        try:
            reset_metrics()
            two_job_campaign().run(tmp_path / "camp")
            snapshot = registry().to_json()
            series = snapshot["repro_campaign_jobs_total"]["series"]
            assert any(
                entry["labels"].get("status") == "ok" and entry["value"] == 2.0
                for entry in series
            )
        finally:
            disable_metrics()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCampaignCli:
    def write_spec(self, tmp_path, **overrides):
        payload = {
            "name": "cli",
            "jobs": [
                {"name": "a", "scenario": "campaign_probe",
                 "grid": {"seed": [0, 1]}, "base": {"scale": 2.0}},
                {"name": "b", "scenario": "campaign_probe",
                 "grid": {"seed": [0]}},
            ],
            **overrides,
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return path

    def test_run_verify_report_round_trip(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        directory = tmp_path / "camp"
        assert cli_main(
            ["campaign", "run", str(spec), "--dir", str(directory)]
        ) == 0
        out = capsys.readouterr().out
        assert "a=ok" in out and "b=ok" in out
        assert cli_main(["campaign", "verify", str(directory)]) == 0
        assert "intact" in capsys.readouterr().out
        assert cli_main(["campaign", "report", str(directory)]) == 0
        assert "# Campaign report: cli" in capsys.readouterr().out

    def test_verify_exits_one_and_quarantines_corruption(self, tmp_path,
                                                         capsys):
        spec = self.write_spec(tmp_path)
        directory = tmp_path / "camp"
        cli_main(["campaign", "run", str(spec), "--dir", str(directory)])
        capsys.readouterr()
        (directory / "scenarios" / "a" / "table.txt").write_text("evil")
        assert cli_main(["campaign", "verify", str(directory)]) == 1
        out = capsys.readouterr().out
        assert "corrupt: scenarios/a/table.txt" in out
        assert "quarantined" in out
        assert (directory / "quarantine" / "scenarios" / "a"
                / "table.txt").exists()

    def test_resume_completes_and_exits_zero(self, tmp_path, capsys,
                                             monkeypatch):
        spec = self.write_spec(tmp_path)
        directory = tmp_path / "camp"
        monkeypatch.setenv("REPRO_FAULTS", json.dumps([
            {"kind": "raise", "scenario": "campaign.checkpoint",
             "match": {"seq": 2}},
        ]))
        with pytest.raises(InjectedFault):
            cli_main(["campaign", "run", str(spec), "--dir", str(directory)])
        monkeypatch.delenv("REPRO_FAULTS")
        capsys.readouterr()
        assert cli_main(["campaign", "resume", str(directory)]) == 0
        assert "b=ok" in capsys.readouterr().out

    def test_degraded_campaign_exits_one_with_footer(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, jobs=[
            {"name": "good", "scenario": "campaign_probe",
             "grid": {"seed": [0]}},
            {"name": "doomed", "scenario": "no_such_scenario"},
        ])
        directory = tmp_path / "camp"
        assert cli_main(
            ["campaign", "run", str(spec), "--dir", str(directory)]
        ) == 1
        captured = capsys.readouterr()
        assert "doomed=failed" in captured.out
        assert "1 of 2 jobs degraded" in captured.err
        assert "campaign resume" in captured.err

    def test_usage_errors_exit_two(self, tmp_path, capsys):
        bad_spec = tmp_path / "bad.json"
        bad_spec.write_text("{not json")
        assert cli_main(
            ["campaign", "run", str(bad_spec), "--dir", str(tmp_path / "d")]
        ) == 2
        assert "unparseable" in capsys.readouterr().err
        assert cli_main(
            ["campaign", "resume", str(tmp_path / "nowhere")]
        ) == 2
        assert "cannot read" in capsys.readouterr().err
