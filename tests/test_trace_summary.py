"""Tests for packet tracing and flow summaries."""

import pytest

from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.metrics.summary import summarize_flow
from repro.sim.engine import Simulator
from repro.sim.node import Agent
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue
from repro.sim.topology import Network
from repro.sim.trace import PacketTracer, TraceEvent


class Sink(Agent):
    def __init__(self, sim):
        super().__init__(sim)
        self.got = []

    def receive(self, packet):
        self.got.append(packet)


def small_net(sim, queue=None):
    net = Network(sim)
    net.add_simplex_link("a", "b", rate_bps=8000.0, delay=0.1, queue=queue)
    net.compute_routes()
    return net


class TestPacketTracer:
    def test_enqueue_tx_deliver_sequence(self):
        sim = Simulator()
        net = small_net(sim)
        tracer = PacketTracer()
        tracer.attach(net.link("a", "b"))
        Sink(sim).attach(net.node("b"), "f")
        net.node("a").send(Packet(src="a", dst="b", flow_id="f", size=1000))
        sim.run()
        kinds = [r.event for r in tracer.records]
        assert kinds == [TraceEvent.ENQUEUE, TraceEvent.TRANSMIT, TraceEvent.DELIVER]

    def test_drop_recorded(self):
        sim = Simulator()
        net = small_net(sim, queue=DropTailQueue(capacity_packets=1))
        tracer = PacketTracer()
        tracer.attach(net.link("a", "b"))
        Sink(sim).attach(net.node("b"), "f")
        for _ in range(5):
            net.node("a").send(Packet(src="a", dst="b", flow_id="f", size=1000))
        sim.run()
        assert tracer.count(TraceEvent.DROP) > 0
        assert tracer.count(TraceEvent.DELIVER) < 5

    def test_flow_filter(self):
        sim = Simulator()
        net = small_net(sim)
        tracer = PacketTracer(flow_filter={"keep"})
        tracer.attach(net.link("a", "b"))
        Sink(sim).attach(net.node("b"), "keep")
        Sink(sim).attach(net.node("b"), "skip")
        net.node("a").send(Packet(src="a", dst="b", flow_id="keep", size=100))
        net.node("a").send(Packet(src="a", dst="b", flow_id="skip", size=100))
        sim.run()
        assert all(r.flow_id == "keep" for r in tracer.records)

    def test_one_way_delays(self):
        sim = Simulator()
        net = small_net(sim)
        tracer = PacketTracer()
        tracer.attach(net.link("a", "b"))
        Sink(sim).attach(net.node("b"), "f")
        net.node("a").send(Packet(src="a", dst="b", flow_id="f", size=1000))
        sim.run()
        delays = tracer.one_way_delays("f")
        # 1 s serialization + 0.1 s propagation
        assert delays == [pytest.approx(1.1)]

    def test_ring_buffer_bound(self):
        sim = Simulator()
        net = small_net(sim)
        tracer = PacketTracer(max_records=5)
        tracer.attach(net.link("a", "b"))
        Sink(sim).attach(net.node("b"), "f")
        for _ in range(10):
            net.node("a").send(Packet(src="a", dst="b", flow_id="f", size=10))
        sim.run()
        assert len(tracer.records) == 5
        assert tracer.dropped_records > 0

    def test_per_flow_counts(self):
        sim = Simulator()
        net = small_net(sim)
        tracer = PacketTracer()
        tracer.attach(net.link("a", "b"))
        Sink(sim).attach(net.node("b"), "f")
        for _ in range(3):
            net.node("a").send(Packet(src="a", dst="b", flow_id="f", size=10))
        sim.run()
        assert tracer.per_flow_counts(TraceEvent.DELIVER) == {"f": 3}


class _StubSim:
    def __init__(self):
        self.now = 0.0


class _StubLink:
    """Just enough link surface for PacketTracer._record."""

    def __init__(self, name="a->b"):
        self.name = name
        self.sim = _StubSim()


class TestRingCompactionEdges:
    """PR 4 ring internals: head offset + amortized compaction."""

    def _feed(self, tracer, link, n, start_uid=0):
        for uid in range(start_uid, start_uid + n):
            packet = Packet(src="a", dst="b", flow_id="f", size=uid)
            tracer._record(link, packet, TraceEvent.ENQUEUE)
            link.sim.now += 1.0

    def test_capacity_one_ring(self):
        # max_records=1: every record past the first both advances the
        # head AND immediately hits the head >= max_records compaction
        link = _StubLink()
        tracer = PacketTracer(max_records=1)
        self._feed(tracer, link, 5)
        assert len(tracer.records) == 1
        assert tracer.records[0].size == 4  # only the newest survives
        assert tracer.dropped_records == 4
        assert tracer._head == 0  # compacted back to a dense buffer
        assert len(tracer._times) == 1  # dead prefix physically freed

    def test_compaction_exactly_at_head_threshold(self):
        # head reaches max_records (3) exactly on the 6th record: the
        # column buffers are 2*max_records long right when compaction
        # fires, and exactly max_records live rows survive the copy
        link = _StubLink()
        tracer = PacketTracer(max_records=3)
        self._feed(tracer, link, 5)
        assert tracer._head == 2  # two discards, threshold not yet hit
        assert len(tracer._times) == 5
        self._feed(tracer, link, 1, start_uid=5)
        assert tracer._head == 0  # third discard triggered compaction
        assert len(tracer._times) == 3
        assert [r.size for r in tracer.records] == [3, 4, 5]
        assert tracer.dropped_records == 3

    def test_queries_consistent_across_compaction_boundary(self):
        # materialize every query just before and just after the
        # compaction fires; the live window must be identical modulo
        # the one record appended in between
        link = _StubLink()
        tracer = PacketTracer(max_records=3)
        self._feed(tracer, link, 5)
        before = [r.size for r in tracer.records]
        count_before = tracer.count(TraceEvent.ENQUEUE)
        per_flow_before = tracer.per_flow_counts(TraceEvent.ENQUEUE)
        self._feed(tracer, link, 1, start_uid=5)  # triggers compaction
        after = [r.size for r in tracer.records]
        assert before == [2, 3, 4]
        assert after == [3, 4, 5]
        assert count_before == 3
        assert tracer.count(TraceEvent.ENQUEUE) == 3
        assert per_flow_before == {"f": 3}
        assert tracer.per_flow_counts(TraceEvent.ENQUEUE) == {"f": 3}
        # events_of sees the same live window as records
        assert [r.size for r in tracer.events_of(TraceEvent.ENQUEUE)] == after

    def test_one_way_delays_span_compaction(self):
        # an enqueue whose deliver lands after a compaction still pairs
        # up, as long as the enqueue itself is in the live window
        link = _StubLink()
        tracer = PacketTracer(max_records=4)
        packet = Packet(src="a", dst="b", flow_id="f", size=1)
        tracer._record(link, packet, TraceEvent.ENQUEUE)
        link.sim.now = 10.0
        # 7 fillers discard 4 old rows -> one compaction fires
        self._feed(tracer, link, 7, start_uid=100)
        assert tracer._head == 0 and tracer.dropped_records == 4
        tracer._record(link, packet, TraceEvent.DELIVER)
        # the original enqueue was compacted away: no pair remains
        assert tracer.one_way_delays("f") == []
        # a fresh enqueue/deliver pair inside the live window does pair
        packet2 = Packet(src="a", dst="b", flow_id="f", size=2)
        tracer._record(link, packet2, TraceEvent.ENQUEUE)
        link.sim.now += 2.5
        tracer._record(link, packet2, TraceEvent.DELIVER)
        assert tracer.one_way_delays("f") == [pytest.approx(2.5)]


class TestFlowSummary:
    def make_recorder(self):
        rec = FlowRecorder("flow")
        for i in range(1, 21):
            t = i * 0.5
            rec.record(
                t, Packet(src="a", dst="b", flow_id="f", size=1000, created_at=t - 0.05)
            )
        return rec

    def test_summary_values(self):
        rec = self.make_recorder()
        s = summarize_flow(rec, warmup=2.0, end=10.0)
        assert s.mean_rate_bps == pytest.approx(16 * 1000 * 8 / 8.0)
        assert s.delivered_packets == 16
        assert s.mean_latency == pytest.approx(0.05)
        assert s.p95_latency == pytest.approx(0.05)

    def test_summary_with_meter(self):
        rec = self.make_recorder()
        meter = CostMeter()
        meter.charge(160)
        meter.set_resident(500)
        s = summarize_flow(rec, warmup=2.0, end=10.0, meter=meter)
        assert s.rx_ops_per_packet == pytest.approx(10.0)
        assert s.rx_peak_bytes == 500

    def test_describe_line(self):
        rec = self.make_recorder()
        s = summarize_flow(rec, warmup=2.0, end=10.0)
        assert "Mbit/s" in s.describe()

    def test_validates_window(self):
        rec = self.make_recorder()
        with pytest.raises(ValueError):
            summarize_flow(rec, warmup=5.0, end=5.0)


class TestOscillationDamping:
    def test_interval_stretches_when_rtt_above_mean(self):
        from repro.tfrc.rate_control import TfrcRateController

        c = TfrcRateController(segment_size=1000, oscillation_damping=True)
        for i in range(20):
            c.on_feedback(1.0 + i * 0.1, 0.01, 1e6, 0.1)
        base = c.send_interval()
        # a sudden high RTT sample stretches the instantaneous interval
        c.on_feedback(4.0, 0.01, 1e6, 0.4)
        assert c.send_interval() > base

    def test_damping_off_by_default(self):
        from repro.tfrc.rate_control import TfrcRateController

        c = TfrcRateController(segment_size=1000)
        c.on_feedback(1.0, 0.01, 1e6, 0.1)
        c.on_feedback(2.0, 0.01, 1e6, 0.4)
        assert c.send_interval() == pytest.approx(1000 / c.rate)
