"""Unit tests for the benchmark table formatter."""

from repro.harness.tables import format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.12345], [1234.5], [3.14159], [0.0]])
        assert "0.1235" in text or "0.1234" in text
        assert "1,234" in text or "1,235" in text
        assert "3.142" in text
        assert "\n" in text

    def test_strings_pass_through(self):
        text = format_table(["name"], [["tcp"], ["qtpaf"]])
        assert "tcp" in text and "qtpaf" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
