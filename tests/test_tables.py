"""Unit tests for the benchmark table formatter."""

from repro.harness.tables import _cell, format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.12345], [1234.5], [3.14159], [0.0]])
        assert "0.1235" in text or "0.1234" in text
        assert "1,234" in text or "1,235" in text
        assert "3.142" in text
        assert "\n" in text

    def test_strings_pass_through(self):
        text = format_table(["name"], [["tcp"], ["qtpaf"]])
        assert "tcp" in text and "qtpaf" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestCellFormatting:
    """The float-format regime boundaries of tables._cell."""

    def test_zero_is_bare(self):
        assert _cell(0.0) == "0"
        assert _cell(-0.0) == "0"

    def test_thousands_regime_from_1000(self):
        # >= 1000 switches to comma-grouped integers
        assert _cell(999.9994) == "999.999"
        assert _cell(1000.0) == "1,000"
        assert _cell(1234567.89) == "1,234,568"

    def test_unit_regime_from_1(self):
        # [1, 1000) keeps three decimals
        assert _cell(1.0) == "1.000"
        assert _cell(3.14159) == "3.142"
        assert _cell(999.0) == "999.000"

    def test_subunit_regime_keeps_four_decimals(self):
        assert _cell(0.99999) == "1.0000"  # rounding may cross the bound
        assert _cell(0.12345) == "0.1235"
        assert _cell(0.0001) == "0.0001"
        assert _cell(0.00001) == "0.0000"  # underflow renders as zeros

    def test_negative_values_keep_their_regime(self):
        assert _cell(-1234.5) == "-1,234"  # formatted as >=1000 magnitude
        assert _cell(-3.14159) == "-3.142"
        assert _cell(-0.12345) == "-0.1235"

    def test_non_floats_pass_through_str(self):
        assert _cell(7) == "7"
        assert _cell(True) == "True"
        assert _cell("x") == "x"
        assert _cell(None) == "None"

    def test_bools_are_not_treated_as_floats(self):
        # bool is an int subclass, not a float: no decimal formatting
        assert _cell(False) == "False"
