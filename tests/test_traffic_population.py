"""Expander determinism, stream independence, SLA wiring, API integration."""

import pytest

from repro.api import Experiment
from repro.topo import TopologySpec
from repro.topo.generators import access_star_endpoints, access_star_spec
from repro.traffic import (
    ArrivalSpec,
    FlowClassSpec,
    PopulationSpec,
    SizeSpec,
    apply_slas,
    expand_population,
)

POISSON = ArrivalSpec(kind="poisson", rate_per_s=10.0)
PARETO = SizeSpec(kind="pareto", alpha=1.3, min_bytes=4000, max_bytes=120_000)
MICE = FlowClassSpec("mice", 0.9, "tcp", PARETO)
ELEPHANT = FlowClassSpec(
    "elephant", 0.1, "gtfrc",
    SizeSpec(kind="fixed", size_bytes=1_500_000), target_bps=2e6,
)


def _population(**kw):
    defaults = dict(
        name="mix",
        arrival=POISSON,
        classes=(MICE, ELEPHANT),
        endpoints=access_star_endpoints(16),
        n_flows=40,
        horizon=10.0,
    )
    defaults.update(kw)
    return PopulationSpec(**defaults)


class TestExpanderDeterminism:
    def test_same_seed_identical_tuple(self):
        spec = _population()
        assert expand_population(spec, 3) == expand_population(spec, 3)

    def test_different_seed_differs(self):
        spec = _population()
        assert expand_population(spec, 0) != expand_population(spec, 1)

    def test_flow_ids_unique_and_class_prefixed(self):
        flows = expand_population(_population(), 0)
        ids = [f.flow_id for f in flows]
        assert len(set(ids)) == len(ids)
        assert all(
            fid.startswith("mice") or fid.startswith("elephant") for fid in ids
        )

    def test_arrival_order_and_finite_budgets(self):
        flows = expand_population(_population(), 0)
        starts = [f.start for f in flows]
        assert starts == sorted(starts)
        assert all(f.size_bytes is not None and f.size_bytes > 0 for f in flows)

    def test_streams_are_independent(self):
        # changing the size distribution must not perturb arrival times
        # or class/endpoint draws — each axis has its own named stream
        small = _population()
        mice_big = FlowClassSpec(
            "mice", 0.9, "tcp", SizeSpec(kind="fixed", size_bytes=999)
        )
        resized = _population(classes=(mice_big, ELEPHANT))
        a = expand_population(small, 5)
        b = expand_population(resized, 5)
        assert [f.start for f in a] == [f.start for f in b]
        assert [f.flow_id for f in a] == [f.flow_id for f in b]
        assert [(f.src, f.dst) for f in a] == [(f.src, f.dst) for f in b]

    def test_rng_stream_namespaces_the_draws(self):
        spec_a = _population()
        spec_b = _population(rng_stream="other")
        assert expand_population(spec_a, 0) != expand_population(spec_b, 0)

    def test_start_offsets_every_arrival(self):
        base = expand_population(_population(), 2)
        shifted = expand_population(_population(start=5.0), 2)
        assert [f.start + 5.0 for f in base] == pytest.approx(
            [f.start for f in shifted]
        )


class TestAssuredEndpoints:
    def test_assured_sources_are_distinct(self):
        flows = expand_population(_population(), 0)
        assured_srcs = [f.src for f in flows if f.transport == "gtfrc"]
        assert len(set(assured_srcs)) == len(assured_srcs)

    def test_pool_exhaustion_raises(self):
        all_assured = FlowClassSpec(
            "e", 1.0, "gtfrc",
            SizeSpec(kind="fixed", size_bytes=1000), target_bps=1e6,
        )
        spec = _population(
            classes=(all_assured,),
            endpoints=access_star_endpoints(3),
            n_flows=10,
            arrival=ArrivalSpec(kind="poisson", rate_per_s=100.0),
        )
        with pytest.raises(ValueError, match="ran out of endpoint pairs"):
            expand_population(spec, 0)


class TestApplySlas:
    def test_one_marker_per_assured_flow(self):
        topology = access_star_spec(16)
        flows = expand_population(_population(), 0)
        marked = apply_slas(topology, flows)
        assured = [f for f in flows if f.transport == "gtfrc"]
        slas = [
            link.marker.sla
            for link in marked.links
            if link.marker is not None and link.marker.sla is not None
        ]
        assert sorted(s.flow_id for s in slas) == sorted(
            f.flow_id for f in assured
        )
        assert all(s.committed_rate_bps == 2e6 for s in slas)

    def test_marker_lands_on_the_flows_access_link(self):
        topology = access_star_spec(16)
        flows = expand_population(_population(), 0)
        marked = apply_slas(topology, flows)
        by_src = {link.src: link for link in marked.links}
        for flow in flows:
            if flow.transport != "gtfrc":
                continue
            marker = by_src[flow.src].marker
            assert marker is not None and marker.sla.flow_id == flow.flow_id

    def test_link_order_is_preserved(self):
        topology = access_star_spec(16)
        flows = expand_population(_population(), 0)
        marked = apply_slas(topology, flows)
        assert [(l.src, l.dst) for l in marked.links] == [
            (l.src, l.dst) for l in topology.links
        ]

    def test_best_effort_population_is_a_noop(self):
        topology = access_star_spec(8)
        flows = expand_population(
            _population(classes=(MICE,), endpoints=access_star_endpoints(8)), 1
        )
        assert apply_slas(topology, flows) == topology

    def test_single_homed_collision_raises(self):
        # two assured flows sharing one source: only one access link
        topology = TopologySpec(links=access_star_spec(2).links)
        from repro.topo.specs import FlowSpec

        flows = (
            FlowSpec("e0", "h0", "srv", transport="gtfrc", target_bps=1e6),
            FlowSpec("e1", "h0", "srv", transport="gtfrc", target_bps=1e6),
        )
        with pytest.raises(ValueError, match="no unmarked access link"):
            apply_slas(topology, flows)


class TestExperimentIntegration:
    def test_population_params_sweep_through_api(self):
        results = (
            Experiment("mice_elephants")
            .sweep(elephant_share=(0.05, 0.1))
            .configure(
                protocol="gtfrc",
                n_hosts=10,
                n_flows=12,
                arrival_rate_per_s=5.0,
                duration=4.0,
            )
            .seeds(0)
            .cache(None)
            .run()
        )
        assert len(results.results) == 2
        for result in results.results:
            metrics = result.metrics()
            assert metrics["n_mice"] + metrics["n_elephants"] == 12
            assert metrics["mice_completed"] >= 0

    @pytest.mark.slow
    def test_thousand_flow_population_completes(self):
        # pin the axes: without .sweep() the registered default grid
        # would kick in (elephant_share up to 0.1 — ~100 elephants,
        # more than the 64-pair endpoint pool holds)
        results = (
            Experiment("mice_elephants")
            .sweep(protocol=("gtfrc",), elephant_share=(0.02,))
            .configure(
                n_hosts=64,
                n_flows=1000,
                arrival_rate_per_s=250.0,
                # wide enough that the storm is churn, not starvation
                # (~60 Mbit/s offered at the arrival peak)
                bottleneck_bps=100e6,
                duration=6.0,
            )
            .seeds(1)
            .cache(None)
            .run()
        )
        (result,) = results.results
        metrics = result.metrics()
        assert metrics["n_mice"] + metrics["n_elephants"] == 1000
        assert metrics["mice_completed"] > 500
