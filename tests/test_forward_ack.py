"""End-to-end tests of the forward-ack (PR-SCTP-style) mechanism."""

import pytest

from repro.core.instances import QTPLIGHT, build_transport_pair
from repro.core.profile import ReliabilityMode, TransportProfile
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.topology import chain


def run(profile, loss=0.05, duration=25.0, seed=4):
    sim = Simulator(seed=seed)
    topo = chain(
        sim, n_hops=1, rate=2e6, delay=0.02,
        channel_factory=lambda: BernoulliLossChannel(loss, rng=sim.rng("l")),
    )
    rec = FlowRecorder()
    snd, rcv = build_transport_pair(
        sim, topo.first, topo.last, "f", profile, recorder=rec, start=True
    )
    sim.run(until=duration)
    return snd, rcv, rec


class TestForwardAck:
    def test_scoreboard_stays_bounded_without_reliability(self):
        snd, rcv, _ = run(QTPLIGHT)
        # without forward-ack pruning this grows with every loss forever
        assert snd.scoreboard.outstanding < 300

    def test_receiver_intervals_stay_bounded(self):
        snd, rcv, _ = run(QTPLIGHT)
        assert rcv.sack_state.interval_count < 50

    def test_cum_ack_tracks_despite_permanent_holes(self):
        snd, rcv, _ = run(QTPLIGHT)
        # cumulative ack keeps pace with the stream despite unrepaired
        # losses, thanks to the advertised forward point
        assert rcv.sack_state.cum_ack > 0.8 * snd.next_seq - 300

    def test_partial_count_abandonment_advances_floor(self):
        profile = TransportProfile(
            name="pc", reliability=ReliabilityMode.PARTIAL_COUNT, partial_max_retx=0
        )
        snd, rcv, _ = run(profile, loss=0.08)
        assert snd.abandoned > 0
        assert rcv.sack_state.cum_ack > 1000

    def test_full_reliability_never_abandons(self):
        profile = TransportProfile(name="full", reliability=ReliabilityMode.FULL)
        snd, rcv, _ = run(profile)
        assert snd.abandoned == 0
        # every hole gets repaired: no skips at the delivery buffer
        assert rcv.skipped_messages == 0
