"""Unit tests for the sender-side SACK scoreboard."""

from repro.sack.scoreboard import SenderScoreboard


def send_n(sb, n, start=0, t=0.0):
    for seq in range(start, start + n):
        sb.on_send(seq, 1000, t + seq * 0.01)


class TestAcking:
    def test_cum_ack_pops_records(self):
        sb = SenderScoreboard()
        send_n(sb, 5)
        digest = sb.on_feedback(2, (), 1.0)
        assert [r.seq for r in digest.newly_acked] == [0, 1, 2]
        assert sb.outstanding == 2

    def test_sack_blocks_mark_records(self):
        sb = SenderScoreboard()
        send_n(sb, 6)
        digest = sb.on_feedback(0, ((3, 5),), 1.0)
        acked = {r.seq for r in digest.newly_acked}
        assert acked == {0, 3, 4}
        assert sb.record_for(3).sacked

    def test_sacked_then_cum_acked_not_double_counted(self):
        sb = SenderScoreboard()
        send_n(sb, 4)
        sb.on_feedback(0, ((2, 3),), 1.0)
        digest = sb.on_feedback(3, (), 2.0)
        assert {r.seq for r in digest.newly_acked} == {1, 3}
        assert sb.total_acked == 4

    def test_stale_report_harmless(self):
        sb = SenderScoreboard()
        send_n(sb, 5)
        sb.on_feedback(3, (), 1.0)
        digest = sb.on_feedback(1, (), 2.0)  # reordered older report
        assert digest.newly_acked == []
        assert sb.cum_ack == 3


class TestLossDetection:
    def test_hole_with_three_sacked_above_is_lost(self):
        sb = SenderScoreboard()
        send_n(sb, 6)
        digest = sb.on_feedback(0, ((2, 5),), 1.0)
        assert [r.seq for r in digest.newly_lost] == [1]
        assert sb.record_for(1).retx_pending

    def test_hole_with_two_sacked_above_not_yet_lost(self):
        sb = SenderScoreboard()
        send_n(sb, 5)
        digest = sb.on_feedback(0, ((2, 4),), 1.0)
        assert digest.newly_lost == []

    def test_loss_detected_incrementally(self):
        sb = SenderScoreboard()
        send_n(sb, 8)
        assert sb.on_feedback(0, ((2, 4),), 1.0).newly_lost == []
        digest = sb.on_feedback(0, ((2, 5),), 2.0)
        assert [r.seq for r in digest.newly_lost] == [1]

    def test_retransmission_needs_fresh_evidence(self):
        sb = SenderScoreboard()
        send_n(sb, 6)
        sb.on_feedback(0, ((2, 5),), 1.0)  # seq 1 lost
        sb.on_retransmit(1, 1.1, highest_sent=5)
        # same old evidence: not lost again
        digest = sb.on_feedback(0, ((2, 5),), 1.2)
        assert digest.newly_lost == []
        # new packets sent and SACKed above the guard: lost again
        # (5 becomes a fresh hole with 6..8 SACKed above it, so it is
        # detected alongside the re-detected retransmission of 1)
        send_n(sb, 3, start=6)
        digest = sb.on_feedback(0, ((2, 5), (6, 9)), 1.5)
        assert {r.seq for r in digest.newly_lost} == {1, 5}

    def test_multiple_holes(self):
        sb = SenderScoreboard()
        send_n(sb, 10)
        digest = sb.on_feedback(0, ((2, 3), (4, 5), (6, 10)), 1.0)
        assert {r.seq for r in digest.newly_lost} == {1, 3, 5}


class TestRetransmissionBookkeeping:
    def test_candidates_in_sequence_order(self):
        sb = SenderScoreboard()
        send_n(sb, 10)
        sb.on_feedback(0, ((2, 3), (4, 10)), 1.0)
        assert [r.seq for r in sb.retransmission_candidates()] == [1, 3]

    def test_retransmit_updates_record(self):
        sb = SenderScoreboard()
        send_n(sb, 6)
        sb.on_feedback(0, ((2, 5),), 1.0)
        rec = sb.on_retransmit(1, 9.0, highest_sent=5)
        assert rec.retx_count == 1
        assert rec.send_time == 9.0
        assert rec.first_send_time < 9.0
        assert not rec.retx_pending

    def test_abandon_removes_tracking(self):
        sb = SenderScoreboard()
        send_n(sb, 3)
        assert sb.abandon(1) is not None
        assert sb.abandon(1) is None
        assert sb.outstanding == 2

    def test_pipe_counts_unsacked_unlost(self):
        sb = SenderScoreboard()
        send_n(sb, 6)
        assert sb.pipe() == 6
        sb.on_feedback(0, ((2, 5),), 1.0)  # 1 lost, 2-4 sacked, 5 in flight
        assert sb.pipe() == 1
        sb.on_retransmit(1, 2.0, highest_sent=5)
        assert sb.pipe() == 2

    def test_mark_outstanding_lost(self):
        sb = SenderScoreboard()
        send_n(sb, 5)
        sb.on_feedback(0, ((3, 4),), 1.0)
        marked = sb.mark_outstanding_lost()
        assert marked == 3  # seqs 1, 2, 4 (3 was sacked; 0 cum-acked)
        assert sb.pipe() == 0


class TestForwardPoint:
    def test_forward_point_is_first_awaited(self):
        sb = SenderScoreboard()
        send_n(sb, 6)
        sb.on_feedback(1, ((4, 6),), 1.0)
        assert sb.forward_point(default=6) == 2

    def test_forward_point_default_when_all_delivered(self):
        sb = SenderScoreboard()
        send_n(sb, 3)
        sb.on_feedback(2, (), 1.0)
        assert sb.forward_point(default=3) == 3

    def test_abandoned_holes_move_forward_point(self):
        sb = SenderScoreboard()
        send_n(sb, 6)
        sb.on_feedback(0, ((2, 6),), 1.0)  # 1 lost
        sb.abandon(1)
        assert sb.forward_point(default=6) == 6

    def test_prune_delivered(self):
        sb = SenderScoreboard()
        send_n(sb, 6)
        sb.on_feedback(0, ((2, 6),), 1.0)
        sb.abandon(1)
        pruned = sb.prune_delivered(sb.forward_point(default=6))
        assert pruned == 4  # sacked 2..5 removed
        assert sb.outstanding == 0
