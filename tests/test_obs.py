"""Tests for the observability plane (PR 8, :mod:`repro.obs`).

Covers the metrics registry and its JSON/Prometheus exports, the
engine/sweep harvests, structured span tracing (writer, JSONL journal,
summary), the live progress renderer, per-cell cProfile capture, the
zero-cost-when-disabled structural guarantees, the declared-metrics
schema fallback for all-failed grids, the CLI surfaces (``run -v``,
``--progress``, ``--trace-summary``, ``--profile``, the ``metrics``
subcommand), and the acceptance reconciliation: a chaos sweep's span
stream agrees exactly with ``ResultSet.failures()`` and the manifest
journal.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Experiment
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.harness.runner import (
    run_matrix,
    shutdown_warm_pool,
    spans_path,
    warm_pool_stats,
)
from repro.obs import (
    MetricsRegistry,
    ProgressRenderer,
    SpanWriter,
    disable_metrics,
    enable_metrics,
    format_span_summary,
    harvest_simulator,
    hotspot_table,
    merge_profiles,
    metrics_enabled,
    profile_call,
    profiling_requested,
    read_spans,
    registry,
    reset_metrics,
    span_summary,
)


@dataclasses.dataclass
class ObsProbeResult(ScenarioResult):
    value: float
    doubled: float


@register("obs_probe", grid={"seed": (0, 1, 2, 3)})
def obs_probe(seed: int = 0, scale: float = 2.0) -> ObsProbeResult:
    """A cheap deterministic scenario for observability tests."""
    value = random.Random(seed).random() * scale
    return ObsProbeResult(value=value, doubled=value * 2)


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    """Every test starts and ends with the obs plane off and empty."""
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    disable_metrics()
    reset_metrics()
    yield
    disable_metrics()
    reset_metrics()


# ----------------------------------------------------------------------
# the metrics registry itself
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent_and_sorted(self):
        reg = MetricsRegistry()
        c = reg.counter("drops")
        c.inc(2, color="RED", link="b")
        c.inc(1, link="a", color="GREEN")
        c.inc(1, color="RED", link="b")
        assert c.value(link="b", color="RED") == 3
        labels = [labels for labels, _ in c.series()]
        # deterministic order: sorted by canonical label key
        assert labels == [
            {"color": "GREEN", "link": "a"},
            {"color": "RED", "link": "b"},
        ]

    def test_gauge_holds_last_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.set(2)
        assert g.value() == 2.0

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        raw = h.value()
        assert raw["count"] == 4
        assert raw["sum"] == pytest.approx(55.55)
        # bucket counts are cumulative (le semantics)
        assert raw["buckets"] == [1, 2, 3]

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.counter("x").set(1)

    def test_create_or_return_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")

    def test_unwritten_series_raises_keyerror(self):
        reg = MetricsRegistry()
        with pytest.raises(KeyError):
            reg.counter("n").value()

    def test_to_json_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "things").inc(3, kind="x")
        snapshot = reg.to_json()
        assert snapshot == {
            "a_total": {
                "kind": "counter",
                "help": "things",
                "series": [{"labels": {"kind": "x"}, "value": 3.0}],
            }
        }
        # the snapshot round-trips through json
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_to_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests").inc(7, code="200")
        reg.gauge("depth").set(3)
        text = reg.to_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{code="200"} 7' in text
        assert "depth 3" in text
        assert text.endswith("\n")

    def test_to_prometheus_histogram_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="10.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum 55.5" in text

    def test_clear_empties_registry(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert reg.to_json() == {}


# ----------------------------------------------------------------------
# the enable gate and zero-cost structure
# ----------------------------------------------------------------------
class TestMetricsGate:
    def test_disabled_by_default(self):
        from repro.sim import engine

        assert not metrics_enabled()
        assert engine._obs_run_hook is None

    def test_enable_disable_toggle_engine_hook(self):
        from repro.sim import engine

        enable_metrics()
        assert metrics_enabled()
        assert engine._obs_run_hook is not None
        disable_metrics()
        assert not metrics_enabled()
        assert engine._obs_run_hook is None

    def test_disabled_simulator_tracks_no_links(self):
        from repro.sim.engine import Simulator
        from repro.sim.topology import Network

        sim = Simulator()
        assert sim._obs_links is None  # structurally absent, not empty
        net = Network(sim)
        net.add_simplex_link("a", "b", rate_bps=8e6, delay=0.01)
        assert sim._obs_links is None

    def test_enabled_simulator_tracks_links(self):
        from repro.sim.engine import Simulator
        from repro.sim.topology import Network

        enable_metrics()
        sim = Simulator()
        net = Network(sim)
        net.add_simplex_link("a", "b", rate_bps=8e6, delay=0.01)
        net.add_simplex_link("b", "a", rate_bps=8e6, delay=0.01)
        assert [link.name for link in sim._obs_links] == ["a->b", "b->a"]

    def test_env_enables_at_import(self):
        code = (
            "from repro.obs.metrics import metrics_enabled; "
            "from repro.sim import engine; "
            "print(metrics_enabled() and engine._obs_run_hook is not None)"
        )
        env = {**os.environ, "REPRO_METRICS": "1",
               "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")}
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == "True"

    def test_env_zero_means_disabled(self):
        code = "from repro.obs.metrics import metrics_enabled; print(metrics_enabled())"
        env = {**os.environ, "REPRO_METRICS": "0",
               "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")}
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == "False"


class TestEngineHarvest:
    def _run_small_sim(self):
        from repro.sim.engine import Simulator
        from repro.sim.node import Agent
        from repro.sim.packet import Packet
        from repro.sim.topology import Network

        sim = Simulator()
        net = Network(sim)
        net.add_simplex_link("a", "b", rate_bps=8e6, delay=0.01)
        net.compute_routes()

        class Sink(Agent):
            def receive(self, packet):
                pass

        Sink(sim).attach(net.node("b"), "f")
        for _ in range(10):
            net.node("a").send(Packet(src="a", dst="b", flow_id="f", size=1000))
        sim.run()
        return sim

    def test_run_exit_hook_publishes_engine_series(self):
        enable_metrics()
        self._run_small_sim()
        snapshot = registry().to_json()
        events = snapshot["repro_engine_events_total"]["series"][0]["value"]
        assert events > 0
        assert "repro_engine_heap_depth" in snapshot
        assert "repro_engine_events_per_second" in snapshot

    def test_queue_counters_labeled_by_link_and_color(self):
        enable_metrics()
        self._run_small_sim()
        accepts = registry().gauge("repro_queue_accepts")
        # untagged packets default to RED (out-of-profile best effort)
        assert accepts.value(link="a->b", color="RED") == 10

    def test_manual_harvest_with_metrics_off(self):
        # harvest_simulator is callable explicitly on any live simulator
        sim = self._run_small_sim()
        harvest_simulator(sim)
        events = registry().counter("repro_engine_events_total").value()
        assert events == sim.events_processed

    def test_disabled_run_publishes_nothing(self):
        self._run_small_sim()
        assert registry().to_json() == {}


# ----------------------------------------------------------------------
# span tracing
# ----------------------------------------------------------------------
class TestSpanWriter:
    def test_events_collect_with_timestamps(self):
        writer = SpanWriter()
        writer({"event": "queued", "i": 0})
        writer({"event": "done", "i": 0, "wall": 0.5})
        assert [e["event"] for e in writer.events] == ["queued", "done"]
        assert all(e["t"] >= 0 for e in writer.events)
        # monotone non-decreasing timestamps
        assert writer.events[0]["t"] <= writer.events[1]["t"]

    def test_header_event_emitted_first(self):
        writer = SpanWriter(header={"scenario": "s", "cells": 4})
        assert writer.events[0]["event"] == "sweep"
        assert writer.events[0]["cells"] == 4

    def test_jsonl_journal_round_trips(self, tmp_path):
        path = tmp_path / "deep" / "s.spans.jsonl"  # parent dir is created
        with SpanWriter(str(path), header={"scenario": "s", "cells": 1}) as w:
            w({"event": "queued", "i": 0})
            w({"event": "done", "i": 0, "wall": 0.1})
        events = read_spans(str(path))
        assert [e["event"] for e in events] == ["sweep", "queued", "done"]
        # every persisted line is valid standalone JSON
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_read_spans_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "s.spans.jsonl"
        path.write_text('{"event": "queued", "i": 0}\n{"event": "do')
        events = read_spans(str(path))
        assert len(events) == 1 and events[0]["event"] == "queued"

    def test_no_path_writes_no_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with SpanWriter() as w:
            w({"event": "queued", "i": 0})
        assert list(tmp_path.iterdir()) == []


SYNTHETIC_SPANS = [
    {"event": "sweep", "scenario": "s", "cells": 4, "t": 0.0},
    {"event": "queued", "i": 0, "t": 0.01},
    {"event": "dispatched", "i": 0, "attempt": 1, "worker": 11, "t": 0.02},
    {"event": "retry", "i": 0, "attempt": 1, "kind": "error", "delay": 0.1,
     "t": 0.3},
    {"event": "done", "i": 0, "wall": 0.6, "cpu": 0.5, "worker": 11,
     "attempts": 2, "cached": False, "t": 1.0},
    {"event": "done", "i": 1, "wall": 0.4, "cpu": 0.3, "worker": 12,
     "attempts": 1, "cached": False, "t": 1.2},
    {"event": "done", "i": 2, "wall": 0.0, "cpu": 0.0, "worker": None,
     "attempts": 1, "cached": True, "t": 1.3},
    {"event": "failed", "i": 3, "kind": "timeout", "error": "TimeoutError",
     "attempts": 2, "wall": 2.0, "t": 2.0},
]


class TestSpanSummary:
    def test_aggregates(self):
        s = span_summary(SYNTHETIC_SPANS)
        assert s["scenario"] == "s"
        assert s["cells"] == 4
        assert s["done"] == 3 and s["failed"] == 1 and s["cached"] == 1
        assert s["retries"] == 1
        assert s["wall_total"] == pytest.approx(1.0)
        assert s["wall_mean"] == pytest.approx(0.5)
        assert s["wall_max"] == pytest.approx(0.6)
        assert s["cpu_total"] == pytest.approx(0.8)
        assert s["duration"] == pytest.approx(2.0)
        assert s["workers"][11]["cells"] == 1
        assert s["workers"][11]["busy"] == pytest.approx(0.6)
        assert s["workers"][11]["utilization"] == pytest.approx(0.3)

    def test_format_renders_counts_and_workers(self):
        text = format_span_summary(SYNTHETIC_SPANS)
        assert "trace summary: s (4 cells" in text
        assert "done=3 failed=1 cached=1 retries=1" in text
        assert "worker" in text and "11" in text

    def test_empty_stream(self):
        s = span_summary([])
        assert s["cells"] == 0 and s["workers"] == {}
        assert "0 cells" in format_span_summary([])


class TestProgressRenderer:
    def test_non_tty_prints_line_per_completion(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream)
        for event in SYNTHETIC_SPANS:
            renderer(event)
        renderer.close()
        out = stream.getvalue()
        lines = out.strip().splitlines()
        # 3 done + 1 failed completions -> 4 progress lines, then workers
        assert lines[0].startswith("[1/4] ok=1 failed=0 retried=1 cached=0")
        assert "[4/4] ok=3 failed=1 retried=1 cached=1" in out
        assert "worker 11: 1 cells" in out
        assert "worker 12: 1 cells" in out

    def test_eta_appears_while_cells_remain(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(total=4, stream=stream)
        renderer({"event": "done", "i": 0, "wall": 0.1, "worker": 1,
                  "attempts": 1, "cached": False})
        assert "eta=" in stream.getvalue()

    def test_total_adopted_from_sweep_header(self):
        renderer = ProgressRenderer(stream=io.StringIO())
        renderer({"event": "sweep", "scenario": "s", "cells": 7})
        assert renderer.total == 7


# ----------------------------------------------------------------------
# profiling
# ----------------------------------------------------------------------
class TestProfiling:
    def test_profile_call_returns_result_and_stats(self):
        def work(n):
            return sum(range(n))

        result, stats = profile_call(work, 1000)
        assert result == sum(range(1000))
        assert stats  # captured at least the profiled call itself
        key = next(iter(stats))
        assert len(key) == 3 and len(stats[key]) == 4

    def test_merge_sums_and_skips_none(self):
        a = {("f.py", 1, "f"): (1, 1, 0.5, 0.6)}
        b = {("f.py", 1, "f"): (2, 2, 0.25, 0.3),
             ("g.py", 2, "g"): (1, 1, 0.1, 0.1)}
        merged = merge_profiles([a, None, b])
        assert merged[("f.py", 1, "f")] == pytest.approx((3, 3, 0.75, 0.9))
        assert merged[("g.py", 2, "g")] == (1, 1, 0.1, 0.1)

    def test_hotspot_table_sorted_by_self_time(self):
        merged = {
            ("cold.py", 1, "cold"): (1, 1, 0.1, 0.1),
            ("hot.py", 2, "hot"): (5, 5, 2.0, 2.5),
        }
        text = hotspot_table(merged, top=1)
        assert "hot.py:2:hot" in text and "cold" not in text

    def test_hotspot_table_empty(self):
        assert hotspot_table({}) == "profile: no samples captured"

    def test_env_gate(self, monkeypatch):
        assert not profiling_requested()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        assert profiling_requested()
        monkeypatch.setenv("REPRO_PROFILE", "0")
        assert not profiling_requested()


# ----------------------------------------------------------------------
# observer events through the runner (serial and pool paths)
# ----------------------------------------------------------------------
class TestObserverEvents:
    def test_serial_sweep_emits_full_lifecycle(self):
        events = []
        records = run_matrix(
            "obs_probe", {"seed": (0, 1)}, cache_dir=None,
            observer=events.append,
        )
        kinds = [e["event"] for e in events]
        assert kinds == ["queued", "queued", "dispatched", "done",
                         "dispatched", "done"]
        done = [e for e in events if e["event"] == "done"]
        assert [e["i"] for e in done] == [0, 1]
        assert all(e["worker"] == os.getpid() for e in done)
        assert all(e["wall"] >= 0 and e["attempts"] == 1 for e in done)
        assert len(records) == 2

    def test_pool_sweep_emits_worker_pids(self):
        events = []
        run_matrix(
            "obs_probe", {"seed": (0, 1, 2, 3)}, cache_dir=None,
            workers=2, observer=events.append,
        )
        done = [e for e in events if e["event"] == "done"]
        assert len(done) == 4
        workers = {e["worker"] for e in done}
        assert workers and os.getpid() not in workers
        dispatched = [e for e in events if e["event"] == "dispatched"]
        assert {e["i"] for e in dispatched} == {0, 1, 2, 3}

    def test_cache_hits_emit_done_cached(self, tmp_path):
        run_matrix("obs_probe", {"seed": (0,)}, cache_dir=tmp_path)
        events = []
        run_matrix(
            "obs_probe", {"seed": (0,)}, cache_dir=tmp_path,
            observer=events.append,
        )
        assert [e["event"] for e in events] == ["done"]
        assert events[0]["cached"] is True

    def test_serial_retry_emits_retry_events(self, monkeypatch):
        from repro.harness.faults import parse_fault_plan

        plan = parse_fault_plan(
            '[{"kind": "raise", "match": {"seed": 0}, "times": 1}]'
        )
        events = []
        records = run_matrix(
            "obs_probe", {"seed": (0,)}, cache_dir=None,
            max_retries=2, strict=False, faults=plan,
            observer=events.append,
        )
        retries = [e for e in events if e["event"] == "retry"]
        assert len(retries) == 1
        assert retries[0]["i"] == 0 and retries[0]["attempt"] == 1
        assert retries[0]["kind"] == "error" and retries[0]["delay"] >= 0
        assert events[-1]["event"] == "done"
        assert events[-1]["attempts"] == 2
        assert records[0].ok and records[0].attempts == 2

    def test_terminal_failure_emits_failed(self, monkeypatch):
        from repro.harness.faults import parse_fault_plan

        plan = parse_fault_plan('[{"kind": "raise", "match": {"seed": 1}}]')
        events = []
        records = run_matrix(
            "obs_probe", {"seed": (0, 1)}, cache_dir=None,
            strict=False, faults=plan, observer=events.append,
        )
        failed = [e for e in events if e["event"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["i"] == 1 and failed[0]["kind"] == "error"
        assert not records[1].ok


# ----------------------------------------------------------------------
# Experiment integration: trace / profile / metrics surfaces
# ----------------------------------------------------------------------
class TestExperimentObs:
    def test_trace_collects_spans_and_journals(self, tmp_path):
        results = (
            Experiment("obs_probe")
            .sweep(seed=(0, 1))
            .cache(tmp_path)
            .trace(True)
            .run()
        )
        assert results.spans is not None
        assert results.spans[0]["event"] == "sweep"
        assert results.spans[0]["scenario"] == "obs_probe"
        assert results.spans[0]["cells"] == 2
        path = tmp_path / "obs_probe.spans.jsonl"
        assert path.exists()
        persisted = read_spans(str(path))
        assert [e["event"] for e in persisted] == \
            [e["event"] for e in results.spans]

    def test_untraced_run_has_no_spans(self):
        results = Experiment("obs_probe").sweep(seed=(0,)).cache(None).run()
        assert results.spans is None

    def test_trace_without_cache_stays_in_memory(self):
        results = (
            Experiment("obs_probe").sweep(seed=(0,)).cache(None)
            .trace(True).run()
        )
        assert results.spans is not None
        assert sum(1 for e in results.spans if e["event"] == "done") == 1

    def test_profile_attaches_compact_stats(self):
        results = (
            Experiment("obs_probe").sweep(seed=(0,)).cache(None)
            .profile(True).run()
        )
        (record,) = list(results)
        assert record.profile
        merged = merge_profiles(r.profile for r in results)
        assert "hotspots" in hotspot_table(merged)

    def test_profile_stripped_from_cache(self, tmp_path):
        (
            Experiment("obs_probe").sweep(seed=(0,)).cache(tmp_path)
            .profile(True).run()
        )
        results = (
            Experiment("obs_probe").sweep(seed=(0,)).cache(tmp_path)
            .profile(True).run()
        )
        (record,) = list(results)
        assert record.cached and record.profile is None

    def test_profile_env_twin(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        records = run_matrix("obs_probe", {"seed": (0,)}, cache_dir=None)
        assert records[0].profile

    def test_profile_survives_pool_pickling(self):
        results = (
            Experiment("obs_probe").sweep(seed=(0, 1)).workers(2).cache(None)
            .profile(True).run()
        )
        assert all(r.profile for r in results)

    def test_metrics_harvested_when_enabled(self):
        enable_metrics()
        results = Experiment("obs_probe").sweep(seed=(0, 1)).cache(None).run()
        snapshot = results.metrics()
        assert snapshot is not None
        cells = snapshot["repro_sweep_cells_total"]["series"]
        assert {"labels": {"status": "ok"}, "value": 2.0} in cells
        assert "repro_sweep_cell_seconds" in snapshot
        assert "repro_warm_pool" in snapshot

    def test_metrics_none_when_disabled(self):
        results = Experiment("obs_probe").sweep(seed=(0,)).cache(None).run()
        assert results.metrics() is None

    def test_progress_callback_and_observer_compose(self):
        events, records_seen = [], []
        results = (
            Experiment("obs_probe").sweep(seed=(0, 1)).cache(None)
            .trace(True)
            .run(progress=records_seen.append, observer=events.append)
        )
        # external observer sees the same stream the writer journals
        assert [e["event"] for e in events] == \
            [e["event"] for e in results.spans]
        assert len(records_seen) == 2

    def test_n_cells(self):
        exp = Experiment("obs_probe").sweep(seed=(0, 1, 2)).configure(scale=1.0)
        assert exp.n_cells() == 3
        assert Experiment("obs_probe").n_cells() == 4  # default grid


# ----------------------------------------------------------------------
# S2: all-failed grids still export an explicit schema
# ----------------------------------------------------------------------
class TestDeclaredSchemaFallback:
    def test_resultset_metric_names_fall_back_to_declared(self):
        from repro.api.resultset import ResultSet
        from repro.harness.faults import parse_fault_plan

        plan = parse_fault_plan('[{"kind": "raise"}]')
        records = run_matrix(
            "obs_probe", {"seed": (0, 1)}, cache_dir=None,
            strict=False, faults=plan,
        )
        rs = ResultSet(records, declared_metrics=["value", "doubled"])
        assert rs.metric_names == ["value", "doubled"]

    def test_experiment_threads_declared_schema(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", '[{"kind": "raise"}]')
        results = (
            Experiment("obs_probe").sweep(seed=(0, 1)).cache(None)
            .run(on_failure="keep")
        )
        assert results.coverage() == 0.0
        assert "value" in results.metric_names
        assert "doubled" in results.metric_names
        header = results.to_csv().splitlines()[0].split(",")
        assert "value" in header and "doubled" in header
        payload = json.loads(results.to_json())
        assert payload[0]["failure"]["kind"] == "error"

    def test_failures_slice_keeps_failure_kind_column(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", '[{"kind": "raise"}]')
        results = (
            Experiment("obs_probe").sweep(seed=(0, 1)).cache(None)
            .run(on_failure="keep")
        )
        # the pinned chaos contract: failure slices expose failure_kind
        assert "failure_kind" in results.failures().metric_names


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestCliObs:
    def _run(self, argv, capsys):
        from repro.harness.cli import main

        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_verbose_prints_cache_and_pool_stats(self, tmp_path, capsys):
        argv = ["run", "obs_probe", "--sweep", "seed=0,1",
                "--cache-dir", str(tmp_path), "--quiet", "-v"]
        code, _, err = self._run(argv, capsys)
        assert code == 0
        assert "cache: 0 hits, 2 misses" in err
        assert "warm pool: " in err
        for key in ("created=", "repaired=", "reused=", "transient="):
            assert key in err
        # second invocation is all cache hits
        code, _, err = self._run(argv, capsys)
        assert code == 0
        assert "cache: 2 hits, 0 misses" in err

    def test_progress_renders_on_stderr_stdout_stays_pure(self, capsys):
        code, out, err = self._run(
            ["run", "obs_probe", "--sweep", "seed=0,1", "--no-cache",
             "--quiet", "--progress", "--format", "csv"],
            capsys,
        )
        assert code == 0
        assert "[2/2] ok=2" in err
        assert f"worker {os.getpid()}:" in err
        # stdout parses as pure csv
        header = out.splitlines()[0]
        assert "seed" in header and "[" not in out

    def test_trace_summary_on_stderr(self, tmp_path, capsys):
        code, _, err = self._run(
            ["run", "obs_probe", "--sweep", "seed=0,1",
             "--cache-dir", str(tmp_path), "--quiet", "--trace-summary"],
            capsys,
        )
        assert code == 0
        assert "trace summary: obs_probe (2 cells" in err
        assert "done=2 failed=0" in err
        assert (tmp_path / "obs_probe.spans.jsonl").exists()

    def test_profile_flag_prints_hotspots(self, capsys):
        code, _, err = self._run(
            ["run", "obs_probe", "--sweep", "seed=0", "--no-cache",
             "--quiet", "--profile"],
            capsys,
        )
        assert code == 0
        assert "profile hotspots" in err

    def test_sweep_workers_env_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        code, _, err = self._run(
            ["run", "obs_probe", "--sweep", "seed=0,1", "--no-cache",
             "--quiet", "--progress"],
            capsys,
        )
        assert code == 0
        # pool path engaged: completions ran in child processes
        assert f"worker {os.getpid()}:" not in err
        assert "worker " in err

    def test_sweep_workers_env_invalid_is_an_error(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "lots")
        code, _, err = self._run(
            ["run", "obs_probe", "--sweep", "seed=0", "--no-cache"],
            capsys,
        )
        assert code == 2
        assert "REPRO_SWEEP_WORKERS must be an integer" in err

    def test_metrics_subcommand_json(self, capsys):
        code, out, err = self._run(
            ["metrics", "obs_probe", "--sweep", "seed=0,1", "--no-cache"],
            capsys,
        )
        assert code == 0
        snapshot = json.loads(out)
        cells = snapshot["repro_sweep_cells_total"]["series"]
        assert {"labels": {"status": "ok"}, "value": 2.0} in cells

    def test_metrics_subcommand_prometheus(self, capsys):
        code, out, _ = self._run(
            ["metrics", "obs_probe", "--sweep", "seed=0,1", "--no-cache",
             "--format", "prometheus"],
            capsys,
        )
        assert code == 0
        assert "# TYPE repro_sweep_cells_total counter" in out
        assert 'repro_sweep_cells_total{status="ok"} 2' in out

    def test_metrics_subcommand_reports_failures(self, capsys, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", '[{"kind": "raise", "match": {"seed": 1}}]'
        )
        code, out, err = self._run(
            ["metrics", "obs_probe", "--sweep", "seed=0,1", "--no-cache"],
            capsys,
        )
        assert code == 1
        snapshot = json.loads(out)  # stdout still pure data
        statuses = {
            tuple(s["labels"].items()): s["value"]
            for s in snapshot["repro_sweep_cells_total"]["series"]
        }
        assert statuses[(("status", "failed"),)] == 1.0
        assert "1 of 2 runs failed terminally" in err


# ----------------------------------------------------------------------
# acceptance: chaos sweep spans reconcile with failures and the journal
# ----------------------------------------------------------------------
class TestChaosSpanReconciliation:
    def test_spans_match_resultset_and_manifest(self, tmp_path, monkeypatch):
        # seed 0: transient fault (one retry then success);
        # seed 2: terminal failure (every attempt faulted)
        monkeypatch.setenv("REPRO_FAULTS", json.dumps([
            {"kind": "raise", "match": {"seed": 0}, "times": 1},
            {"kind": "raise", "match": {"seed": 2}, "times": None},
        ]))
        results = (
            Experiment("obs_probe")
            .sweep(seed=(0, 1, 2, 3))
            .cache(tmp_path)
            .retries(1)
            .trace(True)
            .run(on_failure="keep")
        )
        records = list(results)
        spans = read_spans(str(tmp_path / "obs_probe.spans.jsonl"))

        # --- spans vs ResultSet.failures() -------------------------------
        failed_spans = [e for e in spans if e["event"] == "failed"]
        failures = list(results.failures())
        assert len(failed_spans) == len(failures) == 1
        assert records[failed_spans[0]["i"]].params["seed"] == 2
        assert failed_spans[0]["kind"] == failures[0].result.failure_kind
        assert failed_spans[0]["attempts"] == failures[0].attempts == 2

        # --- spans vs per-record attempt counts --------------------------
        retry_spans = [e for e in spans if e["event"] == "retry"]
        assert sum(1 for e in retry_spans) == \
            sum(r.attempts - 1 for r in records)
        assert {e["i"] for e in retry_spans} == {0, 2}

        # --- spans vs the manifest journal -------------------------------
        journal = [
            json.loads(line)
            for line in (tmp_path / "obs_probe.manifest.jsonl")
            .read_text().splitlines()
        ]
        statuses = {e["i"]: e["status"] for e in journal if "i" in e}
        span_outcomes = {e["i"]: "done" for e in spans if e["event"] == "done"}
        span_outcomes.update(
            {e["i"]: "failed" for e in spans if e["event"] == "failed"}
        )
        assert statuses == {
            i: ("ok" if outcome == "done" else "failed")
            for i, outcome in span_outcomes.items()
        }
        assert statuses == {0: "ok", 1: "ok", 2: "failed", 3: "ok"}

        # --- every fresh cell has a complete lifecycle -------------------
        done_spans = [e for e in spans if e["event"] == "done"]
        assert len(done_spans) + len(failed_spans) == len(records)
        queued = {e["i"] for e in spans if e["event"] == "queued"}
        dispatched = {e["i"] for e in spans if e["event"] == "dispatched"}
        assert queued == dispatched == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# zero-cost-when-disabled: the structural proof (fast, deterministic)
# ----------------------------------------------------------------------
class TestObsStructurallyAbsent:
    def test_disabled_sweep_never_enters_obs_code(self):
        """With everything off, a sweep executes zero repro.obs frames.

        Stronger than any timing bound: sys.setprofile sees every
        Python call, so a hook accidentally left on a hot path shows up
        deterministically regardless of host noise.
        """
        obs_dir = os.sep + os.path.join("repro", "obs") + os.sep
        offenders = []

        def tracer(frame, event, arg):
            if event == "call" and obs_dir in frame.f_code.co_filename:
                offenders.append(
                    (frame.f_code.co_filename, frame.f_code.co_name)
                )

        sys.setprofile(tracer)
        try:
            run_matrix("obs_probe", {"seed": (0, 1)}, cache_dir=None)
        finally:
            sys.setprofile(None)
        # the single permitted entry: the once-per-sweep setup gate that
        # resolves the REPRO_PROFILE flag at run_matrix entry
        assert [name for _, name in offenders] == ["profiling_requested"]

    def test_disabled_engine_loop_carries_no_hook(self):
        from repro.sim import engine

        assert engine._obs_run_hook is None
        # and the per-simulator link list is absent, not merely empty
        assert engine.Simulator()._obs_links is None


# ----------------------------------------------------------------------
# the pinned overhead guards (slow tier)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestObsOverhead:
    """Wall-clock bounds on the obs plane, paired-sample design.

    Single measurements on this workload are noisy (pool scheduling,
    host drift), so each guard times the two variants back to back and
    takes the MINIMUM ratio over many pairs: adjacent runs share the
    ambient drift, and a genuine structural regression (a hook on a
    per-event path costs multiples, not percents) shifts every pair,
    while one noisy sample cannot fail the guard.
    """

    BASE = dict(
        target_bps=4e6, n_cross=1, duration=0.5, warmup=0.1,
        bottleneck_bps=4e6,
    )

    @classmethod
    def _serial_plain(cls):
        run_matrix(
            "af_assurance", {"protocol": ("qtpaf",)}, base=cls.BASE,
            seeds=range(4), workers=1, cache_dir=None,
        )

    @staticmethod
    def _min_ratio(variant, plain, pairs=12):
        def timed(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start

        plain()
        variant()  # both warm before any pair is timed
        return min(timed(variant) / timed(plain) for _ in range(pairs))

    def test_disabled_overhead_under_two_percent(self):
        """The disabled obs plumbing costs <2% on a serial sweep."""

        def facade_disabled():
            (
                Experiment("af_assurance")
                .sweep(protocol=("qtpaf",))
                .configure(**self.BASE)
                .seeds(range(4))
                .workers(1)
                .cache(None)
                .run()
            )

        ratio = self._min_ratio(facade_disabled, self._serial_plain)
        assert ratio < 1.02, (
            f"disabled observability costs {ratio - 1.0:.1%} on every "
            f"paired sample of the serial sweep"
        )

    def test_enabled_overhead_under_ten_percent(self):
        """Metrics + tracing + observer armed cost <10% on the sweep."""
        from repro.obs.metrics import (
            disable_metrics,
            enable_metrics,
            reset_metrics,
        )

        def fully_armed():
            enable_metrics()
            try:
                reset_metrics()
                events = []
                (
                    Experiment("af_assurance")
                    .sweep(protocol=("qtpaf",))
                    .configure(**self.BASE)
                    .seeds(range(4))
                    .workers(1)
                    .cache(None)
                    .trace(True)
                    .run(observer=events.append)
                )
            finally:
                disable_metrics()

        ratio = self._min_ratio(fully_armed, self._serial_plain)
        assert ratio < 1.10, (
            f"enabled observability costs {ratio - 1.0:.1%} on every "
            f"paired sample of the serial sweep"
        )

    def test_pool_obs_bench_overhead_under_ten_percent(self):
        """The pinned pool-path bench vs the warm sweep (nightly twin)."""
        from repro.harness.bench import _bench_obs_overhead, _bench_sweep_warm

        shutdown_warm_pool()
        _bench_sweep_warm()  # pay the pool spawn outside the timings
        ratio = self._min_ratio(_bench_obs_overhead, _bench_sweep_warm)
        assert ratio < 1.10, (
            f"armed obs bench costs {ratio - 1.0:.1%} on every paired "
            f"sample of the warm pool sweep"
        )
