"""Integration tests: each paper claim's *shape* on small configurations.

These run the same scenario builders as the benchmarks, with shorter
durations; the assertions encode the qualitative results the paper
reports (who wins, in which direction).
"""

import pytest

from repro.core.instances import QTPAF, QTPLIGHT, TFRC_MEDIA
from repro.core.profile import ReliabilityMode
from repro.harness import (
    af_dumbbell_scenario,
    estimation_accuracy_scenario,
    friendliness_scenario,
    lossy_path_scenario,
    receiver_load_scenario,
    reliability_scenario,
    selfish_receiver_scenario,
    smoothness_scenario,
)


class TestT1AfAssurance:
    """§4: QTPAF obtains the negotiated QoS whereas TCP fails."""

    @pytest.fixture(scope="class")
    def results(self):
        kw = dict(
            target_bps=6e6, n_cross=8, assured_access_delay=0.1,
            duration=40, warmup=10, seed=3,
        )
        return {
            proto: af_dumbbell_scenario(proto, **kw)
            for proto in ("tcp", "tfrc", "qtpaf")
        }

    def test_tcp_fails_assurance(self, results):
        assert results["tcp"].ratio < 0.8

    def test_qtpaf_holds_assurance(self, results):
        assert results["qtpaf"].ratio >= 0.95

    def test_qtpaf_beats_plain_tfrc(self, results):
        assert results["qtpaf"].ratio > results["tfrc"].ratio

    def test_green_traffic_protected(self, results):
        for r in results.values():
            assert r.green_drop_ratio < 0.01

    def test_cross_traffic_not_starved(self, results):
        # gTFRC only claims its reservation; the rest is shared
        assert results["qtpaf"].cross_total_bps > 1e6


class TestF1Smoothness:
    """§2/§3: TFRC delivers a smoother rate than TCP."""

    def test_tfrc_cov_below_tcp(self):
        tfrc = smoothness_scenario("tfrc", duration=50, warmup=15, seed=4)
        tcp = smoothness_scenario("tcp", duration=50, warmup=15, seed=4)
        assert tfrc.cov < tcp.cov
        # both flows actually used the link
        assert tfrc.mean_bps > 5e5 and tcp.mean_bps > 5e5


class TestF2Wireless:
    """§2 claim (1): rate control beats TCP on bursty-lossy paths."""

    def test_tfrc_wins_under_bursty_loss(self):
        tcp = lossy_path_scenario("tcp", 0.03, bursty=True,
                                  duration=40, warmup=10, seed=2)
        tfrc = lossy_path_scenario("tfrc", 0.03, bursty=True,
                                   duration=40, warmup=10, seed=2)
        assert tfrc.goodput_bps > tcp.goodput_bps

    def test_gap_widens_with_loss(self):
        def ratio(loss):
            tcp = lossy_path_scenario("tcp", loss, bursty=True,
                                      duration=40, warmup=10, seed=2)
            tfrc = lossy_path_scenario("tfrc", loss, bursty=True,
                                       duration=40, warmup=10, seed=2)
            return tfrc.goodput_bps / max(tcp.goodput_bps, 1e3)

        assert ratio(0.05) > ratio(0.01)

    def test_clean_path_equivalent(self):
        tcp = lossy_path_scenario("tcp", 0.0, duration=30, warmup=10, seed=2)
        tfrc = lossy_path_scenario("tfrc", 0.0, duration=30, warmup=10, seed=2)
        assert tfrc.goodput_bps == pytest.approx(tcp.goodput_bps, rel=0.1)


class TestT3ReceiverLoad:
    """§3: QTPlight dramatically decreases the receiver load."""

    @pytest.fixture(scope="class")
    def loads(self):
        return {
            p.name: receiver_load_scenario(p, loss_rate=0.02, duration=25, seed=2)
            for p in (TFRC_MEDIA, QTPLIGHT, QTPAF(1e6))
        }

    def test_qtplight_receiver_cheaper_than_tfrc(self, loads):
        assert loads["QTPlight"].rx_ops_per_packet < (
            loads["TFRC"].rx_ops_per_packet / 1.5
        )

    def test_qtplight_receiver_cheapest_of_all(self, loads):
        light = loads["QTPlight"].rx_ops_per_packet
        assert all(
            light <= r.rx_ops_per_packet
            for name, r in loads.items()
            if name != "QTPlight"
        )

    def test_work_moved_to_sender(self, loads):
        assert loads["QTPlight"].tx_estimator_ops_per_packet > 0
        assert loads["TFRC"].tx_estimator_ops_per_packet == 0

    def test_receiver_memory_reduced(self, loads):
        assert loads["QTPlight"].rx_peak_bytes < loads["TFRC"].rx_peak_bytes


class TestF3EstimationAccuracy:
    """§3: the sender-side estimate tracks the receiver-side one."""

    def test_close_agreement(self):
        r = estimation_accuracy_scenario(0.03, duration=40, warmup=10, seed=2)
        assert r.mean_p_shadow > 0
        assert r.mean_abs_rel_error < 0.15

    def test_estimate_tracks_channel_loss(self):
        r = estimation_accuracy_scenario(0.05, duration=40, warmup=10, seed=2)
        assert r.mean_p_sender == pytest.approx(0.05, rel=0.5)


class TestT4SelfishReceiver:
    """§3: robustness against selfish receivers."""

    def test_standard_tfrc_is_cheatable(self):
        honest = selfish_receiver_scenario("tfrc", lying=False,
                                           duration=40, warmup=15, seed=2)
        lying = selfish_receiver_scenario("tfrc", lying=True,
                                          duration=40, warmup=15, seed=2)
        assert lying.cheater_bps > 1.5 * honest.cheater_bps
        assert lying.victim_bps < 0.5 * honest.victim_bps

    def test_qtplight_defeats_the_cheat(self):
        honest = selfish_receiver_scenario("qtplight", lying=False,
                                           duration=40, warmup=15, seed=2)
        lying = selfish_receiver_scenario("qtplight", lying=True,
                                          duration=40, warmup=15, seed=2)
        assert lying.cheater_bps < 0.2 * honest.cheater_bps

    def test_no_false_positives_for_honest_receiver(self):
        honest = selfish_receiver_scenario("qtplight", lying=False,
                                           duration=40, warmup=15, seed=2)
        # an honest QTPlight keeps its fair share
        assert honest.cheater_bps == pytest.approx(honest.victim_bps, rel=0.35)


class TestT5Reliability:
    """§1: negotiable partial/full reliability trade-offs."""

    @pytest.fixture(scope="class")
    def results(self):
        return {
            mode.value: reliability_scenario(mode, duration=40, seed=2)
            for mode in (
                ReliabilityMode.NONE,
                ReliabilityMode.PARTIAL_TIME,
                ReliabilityMode.FULL,
            )
        }

    def test_full_delivers_most(self, results):
        assert results["full"].delivered >= results["none"].delivered

    def test_none_never_retransmits(self, results):
        assert results["none"].retransmissions == 0
        assert results["full"].retransmissions > 0

    def test_latency_grows_with_reliability(self, results):
        assert results["none"].p95_latency < results["full"].p95_latency

    def test_partial_time_maximizes_useful_delivery(self, results):
        partial = results["partial-time"].useful_ratio
        assert partial >= results["none"].useful_ratio - 0.01
        assert partial >= results["full"].useful_ratio - 0.01


class TestF4Friendliness:
    """§2: TFRC shares fairly with TCP."""

    def test_normalized_throughput_within_factor_two(self):
        r = friendliness_scenario(3, duration=50, warmup=15, seed=2)
        assert 0.4 < r.normalized < 2.0

    def test_jain_index_high(self):
        r = friendliness_scenario(3, duration=50, warmup=15, seed=2)
        assert r.jain > 0.9
