"""Unit tests for the declarative topology subsystem (repro.topo)."""

import dataclasses

import pytest

from repro.netem.channels import (
    BernoulliLossChannel,
    GilbertElliottChannel,
    JitterChannel,
)
from repro.qos.marking import BestEffortMarker, ProfileMarker
from repro.sim.engine import Simulator
from repro.sim.packet import Color
from repro.sim.queues import DropTailQueue, RedQueue, RioQueue
from repro.topo import (
    ChannelSpec,
    FlowSpec,
    LinkSpec,
    MarkerSpec,
    QueueSpec,
    ScenarioSpec,
    SlaSpec,
    TopologySpec,
    build,
    hetero_sla_dumbbell_spec,
    lossy_chain_spec,
    parking_lot_spec,
    reverse_path_chain_spec,
    t1_dumbbell_spec,
)


def tiny_spec(**flow_overrides):
    """A one-link, one-flow scenario for compiler unit tests."""
    flow = dict(
        flow_id="f", src="a", dst="b", transport="tcp", target_bps=None
    )
    flow.update(flow_overrides)
    return ScenarioSpec(
        name="tiny",
        topology=TopologySpec(links=(LinkSpec("a", "b", 1e6, 0.01),)),
        flows=(FlowSpec(**flow),),
    )


class TestSpecValidation:
    def test_specs_are_frozen_and_hashable(self):
        spec = t1_dumbbell_spec("qtpaf", 4e6)
        assert hash(spec) == hash(t1_dumbbell_spec("qtpaf", 4e6))
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.flows[0].flow_id = "other"

    def test_unknown_queue_kind_rejected(self):
        with pytest.raises(ValueError, match="queue kind"):
            QueueSpec(kind="codel")

    def test_queue_params_must_match_kind(self):
        # a RIO threshold on a RED queue would be silently ignored
        with pytest.raises(ValueError, match="does not use"):
            QueueSpec(kind="red", in_min_th=5)
        with pytest.raises(ValueError, match="does not use"):
            QueueSpec(kind="droptail", min_th=5)
        with pytest.raises(ValueError, match="does not use"):
            QueueSpec(kind="rio", capacity_bytes=10_000)
        # matching parameters are accepted
        QueueSpec(kind="red", min_th=5, max_th=15)
        QueueSpec(kind="rio", out_max_p=0.2, mean_pkt_time=0.001)
        QueueSpec(kind="droptail", capacity_bytes=10_000)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            FlowSpec("f", "a", "b", transport="sctp")

    def test_qos_transport_requires_target(self):
        with pytest.raises(ValueError, match="target_bps"):
            FlowSpec("f", "a", "b", transport="gtfrc")

    def test_stop_must_follow_start(self):
        with pytest.raises(ValueError, match="stop"):
            FlowSpec("f", "a", "b", start=5.0, stop=5.0)

    def test_transport_specific_params_must_match_transport(self):
        with pytest.raises(ValueError, match="p_scaling"):
            FlowSpec("f", "a", "b", transport="qtpaf", target_bps=1e6,
                     p_scaling=True)
        with pytest.raises(ValueError, match="sack"):
            FlowSpec("f", "a", "b", transport="tfrc", sack=False)
        FlowSpec("f", "a", "b", transport="gtfrc", target_bps=1e6,
                 p_scaling=True)
        FlowSpec("f", "a", "b", transport="tcp", sack=False)

    def test_duplicate_flow_ids_rejected(self):
        topo = TopologySpec(links=(LinkSpec("a", "b", 1e6, 0.01),))
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpec(
                name="dup",
                topology=topo,
                flows=(FlowSpec("f", "a", "b"), FlowSpec("f", "b", "a")),
            )

    def test_duplicate_directed_links_rejected(self):
        # a->b listed twice (the second would silently replace the
        # first queue/marker inside Network)
        with pytest.raises(ValueError, match="duplicate directed link"):
            TopologySpec(
                links=(
                    LinkSpec("a", "b", 1e6, 0.01),
                    LinkSpec("a", "b", 2e6, 0.02),
                )
            )
        # two duplex specs covering the same pair collide too
        with pytest.raises(ValueError, match="duplicate directed link"):
            TopologySpec(
                links=(
                    LinkSpec("a", "b", 1e6, 0.01),
                    LinkSpec("b", "a", 1e6, 0.01),
                )
            )
        # but two simplex halves are a legitimate asymmetric pair
        TopologySpec(
            links=(
                LinkSpec("a", "b", 1e6, 0.01, duplex=False),
                LinkSpec("b", "a", 5e5, 0.05, duplex=False),
            )
        )


class TestChannelSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown channel kind"):
            ChannelSpec(kind="lossy")

    def test_params_must_match_kind(self):
        with pytest.raises(ValueError, match="does not use"):
            ChannelSpec(kind="bernoulli", loss_rate=0.1, max_jitter=0.01)
        with pytest.raises(ValueError, match="does not use"):
            ChannelSpec(kind="gilbert_elliott", loss_rate=0.1)
        with pytest.raises(ValueError, match="does not use"):
            ChannelSpec(kind="none", loss_rate=0.1)

    def test_required_params_enforced(self):
        with pytest.raises(ValueError, match="requires loss_rate"):
            ChannelSpec(kind="bernoulli")
        with pytest.raises(ValueError, match="requires max_jitter"):
            ChannelSpec(kind="jitter")

    def test_channel_specs_are_frozen_and_hashable(self):
        spec = ChannelSpec(kind="bernoulli", loss_rate=0.05)
        hash(spec)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.loss_rate = 0.1

    def test_compiler_builds_channel_per_direction(self):
        sim = Simulator(seed=0)
        links = (
            LinkSpec(
                "a", "b", 1e6, 0.01,
                channel=ChannelSpec(kind="bernoulli", loss_rate=0.25),
            ),
        )
        built = build(
            sim, ScenarioSpec("c", TopologySpec(links=links), flows=())
        )
        forward = built.link("a", "b").channel
        reverse = built.link("b", "a").channel
        assert isinstance(forward, BernoulliLossChannel)
        assert isinstance(reverse, BernoulliLossChannel)
        assert forward is not reverse  # fresh instance per direction
        # both draw from the shared named stream (chain() convention)
        assert forward._rng is sim.rng("wireless")
        assert reverse._rng is sim.rng("wireless")

    def test_reverse_channel_override_and_none(self):
        sim = Simulator(seed=0)
        links = (
            LinkSpec(
                "a", "b", 1e6, 0.01,
                channel=ChannelSpec(kind="bernoulli", loss_rate=0.25),
                reverse_channel=ChannelSpec(kind="none"),
            ),
            LinkSpec(
                "b", "c", 1e6, 0.01,
                channel=ChannelSpec(kind="jitter", max_jitter=0.002),
                reverse_channel=ChannelSpec(
                    kind="gilbert_elliott", p_g2b=0.1, p_b2g=0.5
                ),
            ),
        )
        built = build(
            sim, ScenarioSpec("c2", TopologySpec(links=links), flows=())
        )
        assert built.link("b", "a").channel is None
        assert isinstance(built.link("b", "c").channel, JitterChannel)
        reverse = built.link("c", "b").channel
        assert isinstance(reverse, GilbertElliottChannel)
        assert reverse.p_g2b == 0.1 and reverse.p_b2g == 0.5

    def test_lossy_chain_preset_matches_hand_built_chain(self):
        # the spec-compiled F2 chain reproduces chain(channel_factory=...)
        # exactly (same rng stream, channel order and parameters)
        from repro.netem.channels import BernoulliLossChannel as Bern
        from repro.sim.topology import chain

        sim_spec = Simulator(seed=5)
        built = build(sim_spec, lossy_chain_spec("tcp", 0.1, n_hops=2))
        sim_hand = Simulator(seed=5)
        rng = sim_hand.rng("wireless")
        topo = chain(
            sim_hand, n_hops=2, rate=2e6, delay=0.005,
            channel_factory=lambda: Bern(0.1, rng=rng),
        )
        for i in range(2):
            spec_ch = built.link(f"h{i}", f"h{i + 1}").channel
            hand_ch = topo.hops[i].channel
            assert type(spec_ch) is type(hand_ch)
            assert spec_ch.loss_rate == hand_ch.loss_rate

    def test_lossy_chain_clean_path_has_no_channels(self):
        sim = Simulator(seed=0)
        built = build(sim, lossy_chain_spec("tcp", 0.0, n_hops=2))
        for i in range(2):
            assert built.link(f"h{i}", f"h{i + 1}").channel is None

    def test_lossy_chain_bursty_solves_target_rate(self):
        spec = lossy_chain_spec("tfrc", 0.05, bursty=True)
        channel = spec.topology.links[0].channel
        assert channel.kind == "gilbert_elliott"
        sim = Simulator(seed=0)
        built = build(sim, spec)
        ge = built.link("h0", "h1").channel
        assert ge.steady_state_loss_rate() == pytest.approx(0.05, rel=1e-6)


class TestCompiler:
    def test_builds_nodes_links_and_routes(self):
        sim = Simulator()
        built = build(sim, tiny_spec())
        assert set(built.net.nodes) == {"a", "b"}
        assert built.net.node("a").next_hop["b"] == "b"
        # duplex: both directions exist with independent queues
        assert built.queue("a", "b") is not built.queue("b", "a")

    def test_simplex_link(self):
        sim = Simulator()
        spec = ScenarioSpec(
            name="oneway",
            topology=TopologySpec(
                links=(LinkSpec("a", "b", 1e6, 0.01, duplex=False),)
            ),
            flows=(),
        )
        built = build(sim, spec)
        with pytest.raises(KeyError):
            built.link("b", "a")

    def test_queue_kinds(self):
        sim = Simulator()
        links = (
            LinkSpec("a", "b", 1e6, 0.01, queue=QueueSpec(kind="red")),
            LinkSpec(
                "b", "c", 1e6, 0.01,
                queue=QueueSpec(kind="rio"),
                reverse_queue=QueueSpec(kind="droptail", capacity_packets=7),
            ),
        )
        built = build(
            sim, ScenarioSpec("q", TopologySpec(links=links), flows=())
        )
        assert isinstance(built.queue("a", "b"), RedQueue)
        assert isinstance(built.queue("b", "c"), RioQueue)
        assert isinstance(built.queue("c", "b"), DropTailQueue)
        assert built.queue("c", "b").capacity_packets == 7

    def test_droptail_bytes_bound_keeps_default_packet_bound(self):
        sim = Simulator()
        links = (
            LinkSpec(
                "a", "b", 1e6, 0.01,
                queue=QueueSpec(kind="droptail", capacity_bytes=50_000),
            ),
        )
        built = build(
            sim, ScenarioSpec("q", TopologySpec(links=links), flows=())
        )
        q = built.queue("a", "b")
        assert q.capacity_bytes == 50_000
        assert q.capacity_packets == 100  # class default preserved

    def test_rio_mean_pkt_time_derives_from_link_rate(self):
        sim = Simulator()
        links = (LinkSpec("a", "b", 10e6, 0.01, queue=QueueSpec(kind="rio")),)
        built = build(
            sim, ScenarioSpec("q", TopologySpec(links=links), flows=())
        )
        assert built.queue("a", "b").mean_pkt_time == pytest.approx(0.0008)

    def test_markers_installed_forward_only(self):
        sim = Simulator()
        marker = MarkerSpec(sla=SlaSpec("f", 1e6))
        links = (LinkSpec("a", "b", 1e6, 0.01, marker=marker),)
        built = build(
            sim, ScenarioSpec("m", TopologySpec(links=links), flows=())
        )
        assert isinstance(built.markers["a->b"], ProfileMarker)
        assert built.link("a", "b").marker is built.markers["a->b"]
        assert built.link("b", "a").marker is None
        assert built.slas["f"].committed_rate_bps == 1e6

    def test_best_effort_marker(self):
        sim = Simulator()
        links = (
            LinkSpec(
                "a", "b", 1e6, 0.01,
                marker=MarkerSpec(default_color="yellow"),
            ),
        )
        built = build(
            sim, ScenarioSpec("m", TopologySpec(links=links), flows=())
        )
        marker = built.markers["a->b"]
        assert isinstance(marker, BestEffortMarker)
        assert marker.color is Color.YELLOW

    def test_per_occurrence_meters_are_independent(self):
        # two MarkerSpecs for the same flow build two meters (per-hop SLAs)
        sim = Simulator()
        ms = MarkerSpec(sla=SlaSpec("f", 1e6))
        links = (
            LinkSpec("a", "b", 1e6, 0.01, marker=ms),
            LinkSpec("b", "c", 1e6, 0.01, marker=ms),
        )
        built = build(
            sim, ScenarioSpec("m", TopologySpec(links=links), flows=())
        )
        assert built.markers["a->b"].meter is not built.markers["b->c"].meter

    def test_flow_record_flag(self):
        sim = Simulator()
        built = build(sim, tiny_spec(record=False))
        assert built.recorders == {}
        with pytest.raises(KeyError):
            built.recorder("f")

    def test_deferred_start_and_stop(self):
        sim = Simulator()
        built = build(sim, tiny_spec(start=1.0, stop=2.0))
        sender = built.senders["f"]
        assert not sender._running
        sim.run(until=1.5)
        assert sender._running
        sim.run(until=2.5)
        assert not sender._running

    def test_transports_build_expected_endpoints(self):
        sim = Simulator()
        spec = t1_dumbbell_spec("qtpaf", 2e6, n_cross=1)
        built = build(sim, spec)
        assert built.senders["assured"].profile.name == "QTPAF"
        assert type(built.senders["x1"]).__name__ == "TcpSender"

    def test_gtfrc_p_scaling_controller(self):
        sim = Simulator()
        built = build(
            sim,
            tiny_spec(transport="gtfrc", target_bps=1e6, p_scaling=True),
        )
        assert built.senders["f"].controller.p_scaling is True

    def test_built_scenario_runs_end_to_end(self):
        sim = Simulator(seed=7)
        built = build(sim, t1_dumbbell_spec("gtfrc", 2e6, n_cross=2))
        sim.run(until=3.0)
        assert built.recorder("assured").delivered_bytes > 0
        assert built.queue("left", "right").stats.enqueued > 0


class TestPresets:
    def test_t1_matches_historical_dumbbell_layout(self):
        sim = Simulator()
        built = build(sim, t1_dumbbell_spec("qtpaf", 4e6, n_cross=2))
        # same node names, routes and bottleneck discipline as topology.dumbbell
        assert set(built.net.nodes) == {
            "left", "right", "s0", "d0", "s1", "d1", "s2", "d2"
        }
        assert built.net.node("s0").next_hop["d0"] == "left"
        assert isinstance(built.queue("left", "right"), RioQueue)
        assert isinstance(built.queue("right", "left"), RioQueue)
        assert "s0->left" in built.markers

    def test_parking_lot_has_two_conditioned_bottlenecks(self):
        sim = Simulator()
        built = build(
            sim, parking_lot_spec("qtpaf", 4e6, n_cross_a=1, n_cross_b=1)
        )
        assert isinstance(built.queue("r0", "r1"), RioQueue)
        assert isinstance(built.queue("r1", "r2"), RioQueue)
        assert "s0->r0" in built.markers and "r1->r2" in built.markers
        assert built.markers["s0->r0"].meter is not built.markers["r1->r2"].meter

    def test_parking_lot_slas_expose_the_edge_contract(self):
        # with distinct per-hop rates, built.slas holds the domain-edge
        # SLA (first marker in link order), not the hop-2 re-meter
        sim = Simulator()
        built = build(
            sim,
            parking_lot_spec(
                "qtpaf", 4e6, n_cross_a=1, n_cross_b=1, hop2_target_bps=6e6
            ),
        )
        assert built.slas["assured"].committed_rate_bps == 4e6
        assert built.markers["r1->r2"].meter is not None  # hop-2 still metered

    def test_reverse_path_flows_oppose_assured(self):
        spec = reverse_path_chain_spec("gtfrc", 4e6, n_hops=2, n_reverse=3)
        assured = spec.flows[0]
        rev = spec.flows[1]
        assert (assured.src, assured.dst) == ("h0", "h2")
        assert (rev.src, rev.dst) == ("h2", "h0")
        assert sum(1 for f in spec.flows if f.transport == "tcp") == 3

    def test_hetero_sla_one_marker_per_assured_flow(self):
        sim = Simulator()
        built = build(
            sim, hetero_sla_dumbbell_spec("gtfrc", (1e6, 2e6), n_cross=1)
        )
        assert built.slas["af0"].committed_rate_bps == 1e6
        assert built.slas["af1"].committed_rate_bps == 2e6
        assert "s0->left" in built.markers and "s1->left" in built.markers

    def test_hetero_sla_requires_targets(self):
        with pytest.raises(ValueError, match="target"):
            hetero_sla_dumbbell_spec("gtfrc", ())
