"""Unit tests for the packet model."""

from repro.sim.packet import (
    AppDataHeader,
    Color,
    Packet,
    PacketKind,
    SackFeedbackHeader,
    TfrcDataHeader,
    total_bytes,
)


def make_packet(**kw):
    defaults = dict(src="a", dst="b", flow_id="f", size=1000)
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_uids_are_unique(self):
        assert make_packet().uid != make_packet().uid

    def test_bits(self):
        assert make_packet(size=125).bits == 1000

    def test_reply_to_swaps_endpoints(self):
        assert make_packet().reply_to() == ("b", "a")

    def test_copy_overrides_and_fresh_uid(self):
        p = make_packet()
        q = p.copy(dst="c")
        assert q.dst == "c" and q.src == p.src
        assert q.uid != p.uid

    def test_default_color_is_best_effort(self):
        assert make_packet().color is Color.RED

    def test_default_kind_is_data(self):
        assert make_packet().kind is PacketKind.DATA

    def test_total_bytes(self):
        pkts = [make_packet(size=100), make_packet(size=200)]
        assert total_bytes(pkts) == 300


class TestHeaders:
    def test_tfrc_data_header_fields(self):
        h = TfrcDataHeader(seq=5, timestamp=1.0, rtt_estimate=0.1)
        assert h.seq == 5 and h.forward_ack == 0

    def test_sack_feedback_defaults(self):
        h = SackFeedbackHeader(
            cum_ack=3,
            blocks=((5, 7),),
            timestamp_echo=0.0,
            elapsed=0.0,
            recv_bytes=1000,
            last_seq=6,
        )
        assert h.p is None and h.x_recv is None and h.interval == 0.0

    def test_app_header_defaults(self):
        app = AppDataHeader()
        assert app.app_seq == -1 and app.deadline is None
