"""Behavioural tests for the TCP baseline."""

import pytest

from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.queues import DropTailQueue
from repro.sim.topology import chain, dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


def tcp_pair(sim, src, dst, flow, recorder=None, **kw):
    snd = TcpSender(sim, dst=dst.name, **kw).attach(src, flow)
    rcv = TcpReceiver(sim, recorder=recorder, sack=kw.get("sack", False)).attach(
        dst, flow
    )
    return snd, rcv


class TestCleanPath:
    def test_saturates_bottleneck(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=4e6, bottleneck_delay=0.02,
                     bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=50))
        rec = FlowRecorder()
        snd, _ = tcp_pair(sim, d.net.node("s0"), d.net.node("d0"), "f", rec)
        snd.start()
        sim.run(until=20)
        assert rec.mean_rate_bps(5, 20) == pytest.approx(4e6, rel=0.05)

    def test_no_loss_means_no_retransmissions(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=4e6, bottleneck_delay=0.02,
                     bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=500))
        snd, _ = tcp_pair(sim, d.net.node("s0"), d.net.node("d0"), "f",
                          max_cwnd=30.0)  # window-limited: queue never fills
        snd.start()
        sim.run(until=10)
        assert snd.retransmissions == 0
        assert snd.timeouts == 0

    def test_slow_start_doubles_window(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=50e6, bottleneck_delay=0.05)
        snd, _ = tcp_pair(sim, d.net.node("s0"), d.net.node("d0"), "f")
        snd.start()
        sim.run(until=0.7)  # a few RTTs (~0.1 s each)
        assert snd.cwnd > 20  # grew well beyond initial 3

    def test_delivery_in_order_goodput(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=2e6, bottleneck_delay=0.01)
        rec = FlowRecorder()
        snd, rcv = tcp_pair(sim, d.net.node("s0"), d.net.node("d0"), "f", rec)
        snd.start()
        sim.run(until=5)
        # no duplicates delivered to the recorder
        assert rec.delivered_packets == rcv.state.received


class TestLossRecovery:
    def lossy_run(self, sack, seed=5, loss=0.02, duration=30):
        sim = Simulator(seed=seed)
        topo = chain(
            sim, n_hops=1, rate=4e6, delay=0.02,
            channel_factory=lambda: BernoulliLossChannel(loss, rng=sim.rng("l")),
        )
        rec = FlowRecorder()
        snd, rcv = tcp_pair(sim, topo.first, topo.last, "f", rec, sack=sack)
        snd.start()
        sim.run(until=duration)
        return snd, rcv, rec

    def test_fast_retransmit_repairs_without_timeout(self):
        snd, _, rec = self.lossy_run(sack=False, loss=0.005)
        assert snd.fast_retransmits > 0
        assert rec.delivered_packets > 1000

    def test_all_data_eventually_delivered_in_order(self):
        snd, rcv, _ = self.lossy_run(sack=True)
        # cumulative ack only advances over contiguous data
        assert rcv.state.cum_ack > 1000

    def test_sack_beats_reno_at_moderate_loss(self):
        _, _, rec_reno = self.lossy_run(sack=False, loss=0.03)
        _, _, rec_sack = self.lossy_run(sack=True, loss=0.03)
        assert rec_sack.mean_rate_bps(5, 30) > 0.8 * rec_reno.mean_rate_bps(5, 30)

    def test_timeouts_recovered(self):
        snd, _, rec = self.lossy_run(sack=False, loss=0.08, duration=40)
        assert snd.timeouts > 0  # heavy loss forces RTOs
        assert rec.mean_rate_bps(10, 40) > 1e4  # but the flow survives

    def test_cwnd_halves_on_fast_retransmit(self):
        snd, _, _ = self.lossy_run(sack=False, loss=0.01)
        drops = [c for _, c in snd.cwnd_log]
        assert min(drops) < max(drops) / 2  # sawtooth visible


class TestReceiver:
    def test_acks_every_segment_by_default(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=2e6, bottleneck_delay=0.01)
        snd, rcv = tcp_pair(sim, d.net.node("s0"), d.net.node("d0"), "f")
        snd.start()
        sim.run(until=3)
        assert rcv.acks_sent == rcv.received_segments

    def test_delayed_ack_halves_ack_rate(self):
        sim = Simulator(seed=1)
        # window-limited so the path stays loss-free: every segment
        # arrives in order and only the every-2nd rule generates ACKs
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=2e6, bottleneck_delay=0.01,
                     bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=500))
        snd = TcpSender(sim, dst="d0", max_cwnd=10.0).attach(d.net.node("s0"), "f")
        rcv = TcpReceiver(sim, delayed_ack=True).attach(d.net.node("d0"), "f")
        snd.start()
        sim.run(until=3)
        assert rcv.acks_sent <= rcv.received_segments * 0.6

    def test_sack_blocks_in_acks(self):
        sim = Simulator(seed=7)
        topo = chain(
            sim, n_hops=1, rate=2e6, delay=0.02,
            channel_factory=lambda: BernoulliLossChannel(0.05, rng=sim.rng("l")),
        )
        rec = FlowRecorder()
        snd, rcv = tcp_pair(sim, topo.first, topo.last, "f", rec, sack=True)
        snd.start()
        sim.run(until=5)
        assert rcv.state.interval_count >= 0  # exercised without crashing
        assert snd.scoreboard.total_lost > 0  # losses detected via blocks
