"""Unit tests for transport profiles and capability negotiation."""

import pytest

from repro.core.instances import QTPAF, QTPLIGHT, TCP_LIKE, TFRC_MEDIA
from repro.core.negotiation import CapabilitySet, NegotiationError, negotiate
from repro.core.profile import (
    CongestionControl,
    LossEstimationSite,
    ProfileError,
    ReliabilityMode,
    TransportProfile,
)


class TestProfileValidation:
    def test_gtfrc_requires_target(self):
        with pytest.raises(ProfileError):
            TransportProfile(congestion_control=CongestionControl.GTFRC)

    def test_segment_size_positive(self):
        with pytest.raises(ProfileError):
            TransportProfile(segment_size=0)

    def test_needs_sack_feedback(self):
        assert QTPLIGHT.needs_sack_feedback  # sender estimation
        assert QTPAF(1e6).needs_sack_feedback  # reliability
        assert not TFRC_MEDIA.needs_sack_feedback

    def test_receiver_runs_estimator(self):
        assert TFRC_MEDIA.receiver_runs_estimator
        assert not QTPLIGHT.receiver_runs_estimator

    def test_target_rate_conversion(self):
        p = QTPAF(8e6)
        assert p.target_rate_bytes == pytest.approx(1e6)
        assert TFRC_MEDIA.target_rate_bytes is None

    def test_with_target_rate(self):
        p = QTPAF(1e6).with_target_rate(2e6)
        assert p.target_rate_bps == 2e6

    def test_wire_round_trip(self):
        for profile in (QTPAF(3e6), QTPLIGHT, TFRC_MEDIA, TCP_LIKE):
            assert TransportProfile.from_wire(profile.to_wire()) == profile

    def test_describe_mentions_guarantee(self):
        assert "g=3.00Mbit/s" in QTPAF(3e6).describe()


class TestInstances:
    def test_qtpaf_composition(self):
        p = QTPAF(5e6)
        assert p.congestion_control is CongestionControl.GTFRC
        assert p.reliability is ReliabilityMode.FULL
        assert p.loss_estimation is LossEstimationSite.RECEIVER
        assert p.name == "QTPAF"

    def test_qtplight_composition(self):
        assert QTPLIGHT.congestion_control is CongestionControl.TFRC
        assert QTPLIGHT.loss_estimation is LossEstimationSite.SENDER
        assert QTPLIGHT.reliability is ReliabilityMode.NONE

    def test_qtpaf_overrides(self):
        p = QTPAF(5e6, segment_size=500)
        assert p.segment_size == 500


class TestNegotiation:
    def test_symmetric_defaults_pick_initiator_preference(self):
        profile = negotiate(CapabilitySet(), CapabilitySet())
        assert profile.congestion_control is CongestionControl.TFRC
        assert profile.reliability is ReliabilityMode.NONE
        assert profile.loss_estimation is LossEstimationSite.RECEIVER

    def test_light_receiver_forces_sender_estimation(self):
        mobile = CapabilitySet(light_receiver=True)
        profile = negotiate(CapabilitySet(), mobile)
        assert profile.loss_estimation is LossEstimationSite.SENDER
        assert profile.name == "QTPlight"

    def test_light_receiver_without_sender_support_fails(self):
        mobile = CapabilitySet(light_receiver=True)
        rigid = CapabilitySet(
            estimation_sites=(LossEstimationSite.RECEIVER,)
        )
        with pytest.raises(NegotiationError):
            negotiate(rigid, mobile)

    def test_qos_request_selects_gtfrc(self):
        caps = CapabilitySet(
            congestion_controls=(CongestionControl.TFRC, CongestionControl.GTFRC),
            qos_target_bps=4e6,
            reliability_modes=(ReliabilityMode.FULL,),
        )
        profile = negotiate(caps, CapabilitySet(
            reliability_modes=(ReliabilityMode.FULL, ReliabilityMode.NONE)))
        assert profile.congestion_control is CongestionControl.GTFRC
        assert profile.target_rate_bps == 4e6
        assert profile.name == "QTPAF"

    def test_qos_degrades_gracefully(self):
        wants_qos = CapabilitySet(qos_target_bps=4e6)
        no_gtfrc = CapabilitySet(congestion_controls=(CongestionControl.TFRC,))
        profile = negotiate(wants_qos, no_gtfrc)
        assert profile.congestion_control is CongestionControl.TFRC
        assert profile.target_rate_bps is None

    def test_strict_qos_refuses_degradation(self):
        wants_qos = CapabilitySet(qos_target_bps=4e6, strict_qos=True)
        no_gtfrc = CapabilitySet(congestion_controls=(CongestionControl.TFRC,))
        with pytest.raises(NegotiationError):
            negotiate(wants_qos, no_gtfrc)

    def test_no_common_reliability_fails(self):
        a = CapabilitySet(reliability_modes=(ReliabilityMode.FULL,))
        b = CapabilitySet(reliability_modes=(ReliabilityMode.NONE,))
        with pytest.raises(NegotiationError):
            negotiate(a, b)

    def test_smaller_segment_wins(self):
        a = CapabilitySet(segment_size=1500)
        b = CapabilitySet(segment_size=576)
        assert negotiate(a, b).segment_size == 576

    def test_capability_wire_round_trip(self):
        caps = CapabilitySet(light_receiver=True, qos_target_bps=2e6)
        assert CapabilitySet.from_wire(caps.to_wire()) == caps
