"""Unit tests for the QTPlight audit-skip lie detector."""

import pytest

from repro.core.instances import QTPLIGHT, TFRC_MEDIA, build_transport_pair
from repro.core.qtplight import LyingFeedbackFilter
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.topology import chain


def run_pair(lying=False, loss=0.02, duration=25.0, seed=3, audit=150):
    from dataclasses import replace

    sim = Simulator(seed=seed)
    topo = chain(
        sim, n_hops=1, rate=2e6, delay=0.02,
        channel_factory=lambda: (
            BernoulliLossChannel(loss, rng=sim.rng("l")) if loss > 0 else None
        ),
    )
    rec = FlowRecorder()
    profile = replace(QTPLIGHT, audit_skip_interval=audit)
    flt = LyingFeedbackFilter() if lying else None
    snd, rcv = build_transport_pair(
        sim, topo.first, topo.last, "f", profile,
        recorder=rec, feedback_filter=flt, start=True,
    )
    sim.run(until=duration)
    return snd, rcv, rec


class TestAuditSkip:
    def test_skips_allocated_in_honest_run(self):
        snd, _, _ = run_pair(lying=False)
        # the sender burned some sequence numbers without sending them
        assert snd.sent_packets < snd.next_seq

    def test_honest_receiver_never_flagged(self):
        snd, _, rec = run_pair(lying=False, loss=0.05)
        assert not snd.cheater_detected
        assert rec.delivered_packets > 1000  # flow unharmed

    def test_lying_receiver_detected_quickly(self):
        snd, _, _ = run_pair(lying=True)
        assert snd.cheater_detected

    def test_detected_cheater_throttled(self):
        snd, _, rec = run_pair(lying=True, duration=30.0)
        honest_snd, _, honest_rec = run_pair(lying=False, duration=30.0)
        assert rec.mean_rate_bps(10, 30) < 0.05 * honest_rec.mean_rate_bps(10, 30)

    def test_audit_disabled_means_no_detection(self):
        snd, _, _ = run_pair(lying=True, audit=0)
        assert not snd.cheater_detected

    def test_audit_overhead_negligible_honest(self):
        _, _, with_audit = run_pair(lying=False, audit=150, seed=9)
        _, _, without = run_pair(lying=False, audit=0, seed=9)
        rate_with = with_audit.mean_rate_bps(10, 25)
        rate_without = without.mean_rate_bps(10, 25)
        assert rate_with == pytest.approx(rate_without, rel=0.1)

    def test_skipped_seqs_pruned_behind_floor(self):
        snd, _, _ = run_pair(lying=False, duration=30.0)
        # the watch set stays tiny: old skips fall behind the forward point
        assert len(snd._skipped) < 10


class TestQtplightNoReceiverEstimatorRegression:
    def test_receiver_meter_unaffected_by_audit(self):
        from repro.metrics.cost import CostMeter

        sim = Simulator(seed=3)
        topo = chain(sim, n_hops=1, rate=2e6, delay=0.02)
        meter = CostMeter()
        snd, rcv = build_transport_pair(
            sim, topo.first, topo.last, "f", QTPLIGHT, rx_meter=meter, start=True
        )
        sim.run(until=10)
        # per-packet receiver work stays in the SACK-state ballpark
        assert meter.ops / max(1, rcv.received_packets) < 6
