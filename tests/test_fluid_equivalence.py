"""Paired hybrid-vs-packet equivalence within documented tolerance bands.

The validation harness for hybrid fidelity (``docs/hybrid.md``): the
same composed scenario runs once with every flow packet-level and once
with the population fluidized, and the *foreground* numbers must agree
within bands measured when the model was calibrated:

===========================  =========  ==========================
metric                        band       measured (calibration)
===========================  =========  ==========================
assured throughput / ratio    10% rel    ~1% (light), ~3% (at floor)
elephant FCT mean             10% rel    ~1%
elephant FCT p95              15% rel    ~4%
completions                   exact      exact
===========================  =========  ==========================

Tiny populations are noisier (a 12-flow crowd is far from a fluid
aggregate), so the Hypothesis sweep uses a deliberately loose 0.6x-1.6x
band — its job is catching regressions that break the coupling entirely,
not re-verifying calibration.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.harness.experiments.hybrid import (
    hybrid_flash_crowd_scenario,
    hybrid_mice_elephants_scenario,
)


@pytest.fixture(scope="module")
def fc_pair():
    return {
        fid: hybrid_flash_crowd_scenario(fidelity=fid)
        for fid in ("packet", "hybrid")
    }


@pytest.fixture(scope="module")
def me_pair():
    return {
        fid: hybrid_mice_elephants_scenario(fidelity=fid)
        for fid in ("packet", "hybrid")
    }


class TestFlashCrowdEquivalence:
    def test_assurance_ratio_within_band(self, fc_pair):
        packet, hybrid = fc_pair["packet"], fc_pair["hybrid"]
        assert hybrid.ratio == pytest.approx(packet.ratio, rel=0.10)

    def test_assurance_holds_at_both_fidelities(self, fc_pair):
        assert fc_pair["packet"].ratio >= 1.0
        assert fc_pair["hybrid"].ratio >= 1.0

    def test_hybrid_processes_fewer_events(self, fc_pair):
        assert fc_pair["hybrid"].events < fc_pair["packet"].events

    def test_background_contract(self, fc_pair):
        # packet runs share the metric contract with all-zero background
        packet, hybrid = fc_pair["packet"], fc_pair["hybrid"]
        assert packet.bg_offered_bytes == 0.0
        assert packet.bg_served_bytes == 0.0
        assert hybrid.bg_offered_bytes > 0.0
        assert hybrid.bg_served_bytes > 0.0

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="unknown fidelity"):
            hybrid_flash_crowd_scenario(fidelity="quantum")


class TestFlashCrowdSaturated:
    def test_foreground_protection_under_saturating_crowd(self):
        # the crowd saturates a 15 Mb/s bottleneck: the packet truth is
        # the assured flow squeezed near its committed floor, and the
        # hybrid must land in the same band instead of letting the
        # foreground keep the whole link (the elastic-claim coupling)
        kwargs = dict(
            n_flows=400,
            peak_rate_per_s=120.0,
            base_rate_per_s=10.0,
            bottleneck_bps=15e6,
        )
        packet = hybrid_flash_crowd_scenario(fidelity="packet", **kwargs)
        hybrid = hybrid_flash_crowd_scenario(fidelity="hybrid", **kwargs)
        assert packet.ratio >= 1.0  # AF assurance survives saturation
        assert hybrid.ratio >= 1.0
        assert hybrid.achieved_bps == pytest.approx(
            packet.achieved_bps, rel=0.15
        )


class TestMiceElephantsEquivalence:
    def test_elephant_completions_identical(self, me_pair):
        packet, hybrid = me_pair["packet"], me_pair["hybrid"]
        assert packet.n_elephants == hybrid.n_elephants
        assert packet.elephants_completed == hybrid.elephants_completed

    def test_elephant_fct_mean_within_band(self, me_pair):
        packet, hybrid = me_pair["packet"], me_pair["hybrid"]
        assert hybrid.elephant_fct_mean_s == pytest.approx(
            packet.elephant_fct_mean_s, rel=0.10
        )

    def test_elephant_fct_p95_within_band(self, me_pair):
        packet, hybrid = me_pair["packet"], me_pair["hybrid"]
        assert hybrid.elephant_fct_p95_s == pytest.approx(
            packet.elephant_fct_p95_s, rel=0.15
        )

    def test_hybrid_processes_fewer_events(self, me_pair):
        assert me_pair["hybrid"].events < me_pair["packet"].events


class TestTinyPopulations:
    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=8, deadline=None)
    def test_hybrid_tracks_packet_on_tiny_crowds(self, seed):
        kwargs = dict(
            n_hosts=8,
            n_flows=12,
            bottleneck_bps=10e6,
            target_bps=3e6,
            duration=4.0,
            warmup=1.0,
            seed=seed,
        )
        packet = hybrid_flash_crowd_scenario(fidelity="packet", **kwargs)
        hybrid = hybrid_flash_crowd_scenario(fidelity="hybrid", **kwargs)
        assert packet.achieved_bps > 0
        ratio = hybrid.achieved_bps / packet.achieved_bps
        assert 0.6 <= ratio <= 1.6
