"""Unit tests for receiver-side SACK state (RFC 2018)."""

from repro.metrics.cost import CostMeter
from repro.sack.blocks import ReceiverSackState


class TestCumulativeAck:
    def test_in_order_advances_cum_ack(self):
        s = ReceiverSackState()
        for seq in range(5):
            assert s.record(seq)
        assert s.cum_ack == 4
        assert s.blocks() == ()

    def test_gap_freezes_cum_ack(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(2)
        assert s.cum_ack == 0
        assert s.blocks() == ((2, 3),)

    def test_filling_gap_merges_and_advances(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(2)
        s.record(1)
        assert s.cum_ack == 2
        assert s.blocks() == ()

    def test_duplicate_below_cum_ack(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(1)
        assert not s.record(0)
        assert s.duplicates == 1

    def test_duplicate_inside_interval(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(5)
        assert not s.record(5)
        assert s.duplicates == 1


class TestBlocks:
    def test_most_recent_block_first(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(10)  # older range
        s.record(20)  # newest range
        blocks = s.blocks()
        assert blocks[0] == (20, 21)
        assert (10, 11) in blocks

    def test_block_limit_respected(self):
        s = ReceiverSackState()
        s.record(0)
        for seq in (10, 20, 30, 40, 50):
            s.record(seq)
        assert len(s.blocks(limit=3)) == 3

    def test_adjacent_sequences_merge_into_one_block(self):
        s = ReceiverSackState()
        s.record(0)
        for seq in (5, 6, 7, 8):
            s.record(seq)
        assert s.blocks() == ((5, 9),)

    def test_bridging_merge(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(5)
        s.record(7)
        s.record(6)  # bridges [5,6) and [7,8)
        assert s.blocks() == ((5, 8),)
        assert s.interval_count == 1

    def test_holes_reported(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(3)
        s.record(6)
        assert s.holes() == [(1, 3), (4, 6)]


class TestAdvanceFloor:
    def test_floor_skips_permanent_holes(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(5)  # holes 1-4
        s.advance_floor(5)
        assert s.cum_ack == 5  # absorbed the [5,6) interval too
        assert s.interval_count == 0

    def test_floor_below_cum_ack_is_noop(self):
        s = ReceiverSackState()
        for seq in range(5):
            s.record(seq)
        s.advance_floor(2)
        assert s.cum_ack == 4

    def test_floor_preserves_intervals_above(self):
        s = ReceiverSackState()
        s.record(0)
        s.record(5)
        s.record(10)
        s.advance_floor(3)
        assert s.cum_ack == 2
        assert s.blocks(limit=5) == ((10, 11), (5, 6)) or s.blocks(limit=5) == (
            (5, 6),
            (10, 11),
        )

    def test_floor_into_middle_of_interval(self):
        s = ReceiverSackState()
        s.record(0)
        for seq in (5, 6, 7):
            s.record(seq)
        s.advance_floor(7)  # floor inside [5,8)
        assert s.cum_ack == 7
        assert s.interval_count == 0


class TestAccounting:
    def test_received_and_bytes(self):
        s = ReceiverSackState()
        s.record(0, size=100)
        s.record(2, size=200)
        assert s.received == 2
        assert s.received_bytes == 300

    def test_meter_resident_tracks_intervals(self):
        meter = CostMeter()
        s = ReceiverSackState(meter=meter)
        s.record(0)
        for seq in (10, 20, 30):
            s.record(seq)
        assert meter.resident_bytes == 24 * 3 + 40

    def test_max_seq_tracked(self):
        s = ReceiverSackState()
        s.record(7)
        s.record(3)
        assert s.max_seq == 7
