"""Tests for application traffic sources and the playout buffer."""

import pytest

from repro.apps.playout import PlayoutBuffer
from repro.apps.sources import CbrSource, MediaSource, OnOffSource, PoissonSource
from repro.core.instances import TFRC_MEDIA, build_transport_pair
from repro.metrics.recorder import FlowRecorder
from repro.sim.engine import Simulator
from repro.sim.packet import AppDataHeader, Packet
from repro.sim.topology import chain


def media_pair(sim, rate=5e6):
    topo = chain(sim, n_hops=1, rate=rate, delay=0.01)
    rec = FlowRecorder()
    snd, rcv = build_transport_pair(
        sim, topo.first, topo.last, "f", TFRC_MEDIA,
        recorder=rec, bulk=False, start=True,
    )
    return snd, rcv, rec


class TestCbr:
    def test_rate_matches_nominal(self):
        sim = Simulator(seed=1)
        snd, rcv, rec = media_pair(sim)
        src = CbrSource(sim, snd, rate_bps=800_000)
        src.start()
        sim.run(until=20)
        assert rec.mean_rate_bps(5, 20) == pytest.approx(800_000, rel=0.1)

    def test_stop_stops_generation(self):
        sim = Simulator(seed=1)
        snd, rcv, rec = media_pair(sim)
        src = CbrSource(sim, snd, rate_bps=800_000)
        src.start()
        sim.run(until=5)
        src.stop()
        count = src.messages
        sim.run(until=10)
        assert src.messages == count

    def test_deadline_attached(self):
        sim = Simulator(seed=1)
        snd, rcv, rec = media_pair(sim)
        src = CbrSource(sim, snd, rate_bps=100_000, lifetime=0.25)
        src.start()
        sim.run(until=1)
        # inspect a queued/sent message via the scoreboard-free app queue
        assert src.messages > 0

    def test_validates_rate(self):
        sim = Simulator(seed=1)
        snd, _, _ = media_pair(sim)
        with pytest.raises(ValueError):
            CbrSource(sim, snd, rate_bps=0)


class TestPoissonAndOnOff:
    def test_poisson_mean_rate(self):
        sim = Simulator(seed=2)
        snd, rcv, rec = media_pair(sim)
        src = PoissonSource(sim, snd, rate_bps=500_000)
        src.start()
        sim.run(until=30)
        assert rec.mean_rate_bps(5, 30) == pytest.approx(500_000, rel=0.2)

    def test_onoff_produces_bursts_and_silences(self):
        sim = Simulator(seed=3)
        snd, rcv, rec = media_pair(sim)
        src = OnOffSource(sim, snd, rate_bps=1e6, mean_on=0.5, mean_off=0.5)
        src.start()
        sim.run(until=30)
        series = rec.series(0.2, end=30)
        idle_bins = sum(1 for v in series if v == 0)
        busy_bins = sum(1 for v in series if v > 0)
        assert idle_bins > 5 and busy_bins > 5

    def test_onoff_long_run_rate_half_of_peak(self):
        sim = Simulator(seed=4)
        snd, rcv, rec = media_pair(sim)
        src = OnOffSource(sim, snd, rate_bps=1e6, mean_on=1.0, mean_off=1.0)
        src.start()
        sim.run(until=60)
        assert rec.mean_rate_bps(5, 60) == pytest.approx(5e5, rel=0.35)


class TestMediaSource:
    def test_gop_structure(self):
        sim = Simulator(seed=1)
        snd, rcv, rec = media_pair(sim)
        src = MediaSource(sim, snd, fps=25)
        src.start()
        sim.run(until=2.0)
        assert src.frames == pytest.approx(2.0 * 25, abs=2)

    def test_frames_fragmented_by_segment_size(self):
        sim = Simulator(seed=1)
        snd, rcv, rec = media_pair(sim)
        src = MediaSource(sim, snd, fps=25, i_size=6000, p_size=3000, b_size=1500)
        src.start()
        sim.run(until=1.0)
        # I frames at 6000 B -> 6 segments of 1000 B each
        assert src.messages > src.frames

    def test_mean_rate_formula(self):
        sim = Simulator(seed=1)
        snd, _, _ = media_pair(sim)
        src = MediaSource(sim, snd, fps=25, i_size=6000, p_size=3000, b_size=1500)
        gop_bytes = 6000 + 3 * 3000 + 8 * 1500
        assert src.mean_rate_bps() == pytest.approx(gop_bytes * 8 * 25 / 12)

    def test_delivered_rate_matches_source_rate(self):
        sim = Simulator(seed=1)
        snd, rcv, rec = media_pair(sim, rate=10e6)
        src = MediaSource(sim, snd, fps=25)
        src.start()
        sim.run(until=20)
        assert rec.mean_rate_bps(5, 20) == pytest.approx(
            src.mean_rate_bps(), rel=0.15
        )


class TestPlayoutBuffer:
    def pkt(self, deadline, frame="P"):
        return Packet(
            src="a", dst="b", flow_id="f", size=100,
            app=AppDataHeader(app_seq=0, frame_type=frame, deadline=deadline),
        )

    def test_on_time_and_late(self):
        buf = PlayoutBuffer()
        assert buf.deliver(self.pkt(deadline=1.0), now=0.5)
        assert not buf.deliver(self.pkt(deadline=1.0), now=1.5)
        assert buf.on_time == 1 and buf.late == 1
        assert buf.on_time_ratio() == 0.5

    def test_no_deadline_counted_separately(self):
        buf = PlayoutBuffer()
        packet = Packet(src="a", dst="b", flow_id="f", size=100)
        assert buf.deliver(packet, now=100.0)
        assert buf.no_deadline == 1
        assert buf.on_time_ratio() == 1.0  # vacuous

    def test_per_frame_type_accounting(self):
        buf = PlayoutBuffer()
        buf.deliver(self.pkt(1.0, frame="I"), now=0.5)
        buf.deliver(self.pkt(1.0, frame="I"), now=2.0)
        buf.deliver(self.pkt(1.0, frame="B"), now=0.1)
        assert buf.by_frame_type["I"] == {"on_time": 1, "late": 1}
        assert buf.by_frame_type["B"]["on_time"] == 1
