"""Unit tests for the ordered-delivery buffer."""

import pytest

from repro.reliability.delivery import DeliveryBuffer
from repro.sim.packet import Packet


def pkt(seq):
    return Packet(src="a", dst="b", flow_id="f", size=100, uid=seq + 1)


class TestInOrderDelivery:
    def setup_method(self):
        self.out = []
        self.buf = DeliveryBuffer(self.out.append)

    def test_sequential_passes_through(self):
        for seq in range(3):
            released = self.buf.push(seq, pkt(seq), now=0.0)
            assert len(released) == 1
        assert len(self.out) == 3

    def test_out_of_order_held_back(self):
        assert self.buf.push(1, pkt(1), 0.0) == []
        assert self.buf.buffered == 1
        released = self.buf.push(0, pkt(0), 0.1)
        assert len(released) == 2
        assert self.buf.buffered == 0

    def test_duplicates_dropped(self):
        self.buf.push(0, pkt(0), 0.0)
        assert self.buf.push(0, pkt(0), 0.1) == []
        assert self.buf.duplicates == 1

    def test_duplicate_of_buffered(self):
        self.buf.push(2, pkt(2), 0.0)
        self.buf.push(2, pkt(2), 0.1)
        assert self.buf.duplicates == 1

    def test_full_reliability_waits_forever(self):
        self.buf.push(1, pkt(1), 0.0)
        assert self.buf.poll(1e9) == []
        assert self.buf.skipped == 0


class TestGapSkipping:
    def setup_method(self):
        self.out = []
        self.buf = DeliveryBuffer(self.out.append, gap_timeout=1.0)

    def test_gap_skipped_after_timeout(self):
        self.buf.push(0, pkt(0), 0.0)
        self.buf.push(2, pkt(2), 0.5)  # hole at 1
        assert self.buf.poll(1.0) == []  # not yet expired
        released = self.buf.poll(1.6)
        assert [p.uid for p in released] == [3]
        assert self.buf.skipped == 1

    def test_push_after_timeout_triggers_skip(self):
        self.buf.push(0, pkt(0), 0.0)
        self.buf.push(2, pkt(2), 0.0)
        released = self.buf.push(4, pkt(4), 2.0)
        # hole at 1 expired -> 2 released; hole at 3 still fresh
        assert len(released) == 1
        assert self.buf.buffered == 1

    def test_late_packet_filling_gap_before_timeout(self):
        self.buf.push(0, pkt(0), 0.0)
        self.buf.push(2, pkt(2), 0.1)
        released = self.buf.push(1, pkt(1), 0.5)
        assert len(released) == 2
        assert self.buf.skipped == 0

    def test_validates_timeout(self):
        with pytest.raises(ValueError):
            DeliveryBuffer(lambda p: None, gap_timeout=0.0)


class TestAdvance:
    def setup_method(self):
        self.out = []
        self.buf = DeliveryBuffer(self.out.append, gap_timeout=10.0)

    def test_advance_skips_holes_and_delivers_buffered(self):
        self.buf.push(0, pkt(0), 0.0)
        self.buf.push(2, pkt(2), 0.0)  # hole at 1
        self.buf.push(5, pkt(5), 0.0)  # holes at 3,4
        released = self.buf.advance(5, now=0.1)
        # 2 delivered (hole 1 skipped); 5 delivered too since floor
        # reaches it and it is next after the skipped 3,4
        assert [p.uid for p in released] == [3, 6]
        assert self.buf.skipped == 3
        assert self.buf.next_seq == 6

    def test_advance_noop_when_floor_behind(self):
        for seq in range(3):
            self.buf.push(seq, pkt(seq), 0.0)
        released = self.buf.advance(1, now=0.1)
        assert released == []
        assert self.buf.next_seq == 3
