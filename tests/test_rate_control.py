"""Unit tests for the TFRC rate controller and gTFRC."""

import pytest

from repro.tfrc.gtfrc import GtfrcRateController
from repro.tfrc.rate_control import T_MBI, TfrcRateController
from repro.tfrc.equation import tcp_throughput


class TestStartup:
    def test_initial_rate_one_packet_per_second(self):
        c = TfrcRateController(segment_size=1000)
        assert c.rate == 1000.0
        assert c.send_interval() == pytest.approx(1.0)

    def test_first_feedback_sets_initial_window_rate(self):
        c = TfrcRateController(segment_size=1000)
        c.on_feedback(now=1.0, p=0.0, x_recv=1000.0, rtt_sample=0.1)
        assert c.rate == pytest.approx(c.initial_window_rate(0.1))

    def test_initial_window_follows_rfc3390(self):
        c = TfrcRateController(segment_size=1000)
        assert c.initial_window_rate(1.0) == pytest.approx(4000.0)
        c_small = TfrcRateController(segment_size=200)
        # min(4*200, max(2*200, 4380)) = 800
        assert c_small.initial_window_rate(1.0) == pytest.approx(800.0)

    def test_validates_segment_size(self):
        with pytest.raises(ValueError):
            TfrcRateController(segment_size=0)


class TestSlowStart:
    def feedbacks(self, c, n, x_recv, rtt=0.1, start=1.0):
        for i in range(n):
            c.on_feedback(start + i * rtt, 0.0, x_recv, rtt)

    def test_doubles_once_per_rtt_capped_by_x_recv(self):
        c = TfrcRateController(segment_size=1000)
        self.feedbacks(c, 1, x_recv=50_000)
        first = c.rate
        self.feedbacks(c, 1, x_recv=50_000, start=1.1)
        assert first < c.rate <= 2 * 50_000

    def test_zero_x_recv_collapses_to_one_packet_per_rtt(self):
        c = TfrcRateController(segment_size=1000)
        self.feedbacks(c, 1, x_recv=10_000)
        c.on_feedback(2.0, 0.0, 0.0, 0.1)
        assert c.rate == pytest.approx(1000 / 0.1)

    def test_no_doubling_within_same_rtt(self):
        c = TfrcRateController(segment_size=1000)
        c.on_feedback(1.0, 0.0, 1e6, 0.1)
        first = c.rate
        c.on_feedback(1.01, 0.0, 1e6, 0.1)  # 10 ms later, rtt is 100 ms
        assert c.rate <= 2 * first

    def test_in_slow_start_flag(self):
        c = TfrcRateController()
        assert c.in_slow_start
        c.on_feedback(1.0, 0.01, 1e5, 0.1)
        assert not c.in_slow_start


class TestEquationPhase:
    def test_rate_follows_equation_capped_by_2x_recv(self):
        c = TfrcRateController(segment_size=1000)
        c.on_feedback(1.0, 0.0, 1e6, 0.1)
        c.on_feedback(1.2, 0.01, 1e6, 0.1)
        x_calc = tcp_throughput(1000, c.rtt.rtt, 0.01)
        assert c.rate == pytest.approx(min(x_calc, 2e6))

    def test_low_x_recv_caps_rate(self):
        c = TfrcRateController(segment_size=1000)
        c.on_feedback(1.0, 0.0, 1e6, 0.1)
        c.on_feedback(1.2, 0.001, 5000.0, 0.1)
        assert c.rate == pytest.approx(10_000.0)

    def test_floor_one_packet_per_t_mbi(self):
        c = TfrcRateController(segment_size=1000)
        c.on_feedback(1.0, 0.0, 1e6, 0.1)
        c.on_feedback(1.2, 1.0, 1.0, 2.0)  # catastrophic loss
        assert c.rate >= 1000 / T_MBI

    def test_higher_loss_means_lower_rate(self):
        def rate_for(p):
            c = TfrcRateController(segment_size=1000)
            c.on_feedback(1.0, 0.0, 1e9, 0.1)
            c.on_feedback(1.2, p, 1e9, 0.1)
            return c.rate

        assert rate_for(0.001) > rate_for(0.01) > rate_for(0.1)


class TestNofeedback:
    def test_timeout_halves_rate(self):
        c = TfrcRateController(segment_size=1000)
        c.on_feedback(1.0, 0.01, 1e6, 0.1)
        before = c.rate
        c.on_nofeedback_timeout(2.0)
        assert c.rate == pytest.approx(before / 2)

    def test_timeout_floor(self):
        c = TfrcRateController(segment_size=1000)
        for i in range(50):
            c.on_nofeedback_timeout(float(i))
        assert c.rate >= 1000 / T_MBI

    def test_nofeedback_interval_before_rtt(self):
        c = TfrcRateController()
        assert c.nofeedback_interval() == 2.0

    def test_nofeedback_interval_after_rtt(self):
        c = TfrcRateController(segment_size=1000)
        c.on_feedback(1.0, 0.0, 1e6, 0.1)
        assert c.nofeedback_interval() == pytest.approx(
            max(4 * c.rtt.rtt, 2 * 1000 / c.rate)
        )


class TestGtfrc:
    def make(self, g_bytes=50_000, **kw):
        return GtfrcRateController(target_rate=g_bytes, segment_size=1000, **kw)

    def test_rate_never_below_guarantee(self):
        c = self.make(g_bytes=50_000)
        c.on_feedback(1.0, 0.0, 1e6, 0.1)
        c.on_feedback(1.2, 0.5, 1e6, 0.1)  # brutal loss report
        assert c.rate >= 50_000
        assert c.floor_activations > 0

    def test_behaves_like_tfrc_above_guarantee(self):
        g = 1000.0  # tiny guarantee
        c = self.make(g_bytes=g)
        t = TfrcRateController(segment_size=1000)
        for ctrl in (c, t):
            ctrl.on_feedback(1.0, 0.0, 1e6, 0.1)
            ctrl.on_feedback(1.2, 0.01, 1e6, 0.1)
        assert c.rate == pytest.approx(t.rate)

    def test_nofeedback_respects_floor(self):
        c = self.make(g_bytes=50_000)
        c.on_feedback(1.0, 0.0, 1e6, 0.1)
        for i in range(20):
            c.on_nofeedback_timeout(2.0 + i)
        assert c.rate >= 50_000

    def test_slow_start_starts_at_reservation(self):
        c = self.make(g_bytes=50_000)
        c.on_feedback(1.0, 0.0, 2000.0, 0.1)
        assert c.rate >= 50_000

    def test_p_scaling_variant_floors_too(self):
        c = self.make(g_bytes=50_000, p_scaling=True)
        c.on_feedback(1.0, 0.0, 1e6, 0.1)
        c.on_feedback(1.2, 0.5, 1e6, 0.1)
        assert c.rate >= 50_000

    def test_validates_target(self):
        with pytest.raises(ValueError):
            GtfrcRateController(target_rate=0.0)
