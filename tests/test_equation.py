"""Unit tests for the TCP throughput equation."""

import math

import pytest

from repro.tfrc.equation import solve_loss_rate, tcp_throughput


class TestTcpThroughput:
    def test_zero_loss_is_unconstrained(self):
        assert tcp_throughput(1000, 0.1, 0.0) == math.inf

    def test_decreasing_in_loss_rate(self):
        rates = [tcp_throughput(1000, 0.1, p) for p in (0.001, 0.01, 0.1, 0.5)]
        assert rates == sorted(rates, reverse=True)
        assert all(r > 0 for r in rates)

    def test_decreasing_in_rtt(self):
        fast = tcp_throughput(1000, 0.01, 0.01)
        slow = tcp_throughput(1000, 0.2, 0.01)
        assert fast > slow

    def test_proportional_to_segment_size(self):
        small = tcp_throughput(500, 0.1, 0.01)
        large = tcp_throughput(1000, 0.1, 0.01)
        assert large == pytest.approx(2 * small)

    def test_known_value_small_p_approximation(self):
        # for small p the simple rate ~ s/(R*sqrt(2p/3)) dominates
        s, rtt, p = 1000, 0.1, 1e-4
        simple = s / (rtt * math.sqrt(2 * p / 3))
        assert tcp_throughput(s, rtt, p) == pytest.approx(simple, rel=0.05)

    def test_p_clamped_at_one(self):
        assert tcp_throughput(1000, 0.1, 1.0) == tcp_throughput(1000, 0.1, 5.0)

    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            tcp_throughput(1000, 0.0, 0.01)

    def test_custom_rto(self):
        default = tcp_throughput(1000, 0.1, 0.05)
        long_rto = tcp_throughput(1000, 0.1, 0.05, t_rto=2.0)
        assert long_rto < default


class TestSolveLossRate:
    def test_round_trip_inversion(self):
        s, rtt = 1000, 0.08
        for p in (0.001, 0.01, 0.08):
            rate = tcp_throughput(s, rtt, p)
            assert solve_loss_rate(s, rtt, rate) == pytest.approx(p, rel=1e-3)

    def test_unreachable_target_clamps_to_one(self):
        # even p=1 gives more than this absurdly low target
        low = tcp_throughput(1000, 0.1, 1.0) * 0.5
        assert solve_loss_rate(1000, 0.1, low) == 1.0

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            solve_loss_rate(1000, 0.1, 0.0)

    def test_higher_target_needs_lower_loss(self):
        p_low = solve_loss_rate(1000, 0.1, 1e6)
        p_high = solve_loss_rate(1000, 0.1, 1e5)
        assert p_low < p_high
