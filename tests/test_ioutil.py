"""The shared atomic-write helpers (repro.ioutil)."""

import json
import os

import pytest

from repro.ioutil import atomic_write_bytes, atomic_write_json, atomic_write_text


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        path = tmp_path / "payload.bin"
        returned = atomic_write_bytes(path, b"\x00\x01\x02")
        assert returned == path
        assert path.read_bytes() == b"\x00\x01\x02"

    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "note.txt"
        atomic_write_text(path, "héllo\n")
        assert path.read_text(encoding="utf-8") == "héllo\n"

    def test_json_is_canonical_and_newline_terminated(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"b": 2, "a": 1})
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}
        # sorted keys: byte-stable across runs regardless of insertion order
        assert text == json.dumps({"a": 1, "b": 2}, indent=2, sort_keys=True) + "\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "state.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.txt"
        atomic_write_text(path, "deep")
        assert path.read_text() == "deep"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "clean.txt"
        atomic_write_text(path, "x")
        assert [p.name for p in tmp_path.iterdir()] == ["clean.txt"]

    def test_failed_write_leaves_original_intact(self, tmp_path,
                                                 monkeypatch):
        path = tmp_path / "precious.txt"
        atomic_write_text(path, "original")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at publish time")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(path, "half-written")
        monkeypatch.undo()
        # the original survives untouched and the temp file is cleaned up
        assert path.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["precious.txt"]

    def test_fsync_false_still_atomic(self, tmp_path):
        path = tmp_path / "fast.bin"
        atomic_write_bytes(path, b"payload", fsync=False)
        assert path.read_bytes() == b"payload"
        assert [p.name for p in tmp_path.iterdir()] == ["fast.bin"]


class TestAdoption:
    """The repo's derived-artifact writers all route through ioutil."""

    def test_bench_record_write_is_atomic(self, tmp_path, monkeypatch):
        from repro.harness import bench

        calls = []
        real = bench.atomic_write_text

        def spy(path, text, **kw):
            calls.append(str(path))
            return real(path, text, **kw)

        monkeypatch.setattr(bench, "atomic_write_text", spy)
        record_path = tmp_path / "BENCH_core.json"
        bench.write_record(record_path, {"m": {"rate": 1.0, "seconds": 1.0}})
        bench.append_history(tmp_path / "hist", {"current": {}})
        assert any("BENCH_core.json" in c for c in calls)
        assert any(os.sep + "hist" + os.sep in c for c in calls)

    def test_resultset_exports_are_atomic(self, tmp_path, monkeypatch):
        from repro.api import resultset as resultset_mod
        from repro.api.resultset import ResultSet
        from repro.harness.runner import RunRecord

        calls = []
        real = resultset_mod.atomic_write_text

        def spy(path, text, **kw):
            calls.append(str(path))
            return real(path, text, **kw)

        monkeypatch.setattr(resultset_mod, "atomic_write_text", spy)
        results = ResultSet([
            RunRecord(scenario="s", params={"seed": 0}, result={"v": 1.0}),
        ])
        results.to_csv(tmp_path / "out.csv")
        results.to_json(tmp_path / "out.json")
        assert len(calls) == 2
        assert (tmp_path / "out.csv").exists()
        assert json.loads((tmp_path / "out.json").read_text())
