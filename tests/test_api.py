"""Tests for the unified experiment API (repro.api)."""

import json

import pytest

from repro.api import Experiment, MappingResult, ResultSet, ScenarioResult
from repro.harness.registry import get_scenario
from repro.harness.runner import RunRecord, run_matrix

#: A fast negotiation sweep shared by ResultSet tests (no simulation).
NEG_PAIRS = ("default/default", "server/mobile")

#: A small but real simulation config for end-to-end Experiment tests.
LOSSY_BASE = dict(loss_rate=0.02, duration=2.0, warmup=0.5)


@pytest.fixture(scope="module")
def lossy():
    """2 protocols x 2 seeds of a short lossy_path sweep."""
    return (
        Experiment("lossy_path")
        .sweep(protocol=("tcp", "tfrc"))
        .configure(**LOSSY_BASE)
        .seeds((0, 1))
        .run()
    )


class TestExperimentBuilder:
    def test_unknown_scenario_fails_at_construction(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            Experiment("definitely_not_registered")

    def test_unknown_sweep_axis_fails_at_call_site(self):
        with pytest.raises(ValueError, match="bogus"):
            Experiment("lossy_path").sweep(bogus=(1, 2))

    def test_unknown_configure_key_fails_at_call_site(self):
        with pytest.raises(ValueError, match="nope"):
            Experiment("lossy_path").configure(nope=3)

    def test_empty_sweep_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Experiment("lossy_path").sweep(loss_rate=())

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            Experiment("lossy_path").seeds(())

    def test_from_spec(self):
        spec = get_scenario("negotiation")
        experiment = Experiment.from_spec(spec)
        assert experiment.spec is spec

    def test_from_spec_rejects_non_registered_specs(self):
        # run() resolves by registry name, so a hand-built/modified
        # spec must fail here, not validate against a phantom schema
        import dataclasses

        fake = dataclasses.replace(get_scenario("negotiation"))
        with pytest.raises(ValueError, match="not the registered"):
            Experiment.from_spec(fake)

    def test_default_grid_used_when_no_sweep_given(self):
        experiment = Experiment("negotiation")
        assert experiment.grid == dict(get_scenario("negotiation").default_grid)

    def test_sweep_replaces_default_grid(self):
        experiment = Experiment("negotiation").sweep(pair=NEG_PAIRS)
        assert experiment.grid == {"pair": NEG_PAIRS}

    def test_builder_methods_chain(self):
        experiment = Experiment("lossy_path")
        assert (
            experiment.sweep(protocol=("tcp",))
            .configure(duration=1.0)
            .seeds(1)
            .workers(1)
            .cache(None)
            is experiment
        )

    def test_run_matches_run_matrix(self):
        grid = {"pair": NEG_PAIRS}
        via_api = Experiment("negotiation").sweep(grid).run()
        via_runner = run_matrix("negotiation", grid)
        assert via_api.records == via_runner

    def test_repr_names_scenario_and_grid(self):
        text = repr(Experiment("negotiation").sweep(pair=NEG_PAIRS))
        assert "negotiation" in text and "pair" in text


class TestResultSetBasics:
    def test_len_iter_and_grid_order(self, lossy):
        assert len(lossy) == 4
        combos = [(r.params["protocol"], r.params["seed"]) for r in lossy]
        assert combos == [("tcp", 0), ("tcp", 1), ("tfrc", 0), ("tfrc", 1)]

    def test_results_follow_contract(self, lossy):
        assert all(isinstance(r, ScenarioResult) for r in lossy.results)

    def test_param_and_metric_names(self, lossy):
        assert lossy.param_names == [
            "loss_rate", "duration", "warmup", "protocol", "seed",
        ]
        # protocol/loss_rate metrics are shadowed by the parameters
        assert lossy.metric_names == ["observed_loss_rate", "goodput_bps"]

    def test_one_and_value(self, lossy):
        r = lossy.one(protocol="tcp", seed=0)
        assert r.protocol == "tcp"
        assert lossy.value("goodput_bps", protocol="tcp", seed=0) == r.goodput_bps

    def test_one_requires_unique_match(self, lossy):
        with pytest.raises(KeyError, match="matched 2"):
            lossy.one(protocol="tcp")

    def test_value_unknown_metric_errors(self, lossy):
        with pytest.raises(KeyError, match="unknown metric"):
            lossy.value("nope", protocol="tcp", seed=0)

    def test_unknown_metric_error_names_the_contract(self, lossy):
        from repro.api import UnknownMetricError

        with pytest.raises(UnknownMetricError) as exc:
            lossy.value("nope", protocol="tcp", seed=0)
        # a typo fails with the declared contract in hand, not with a
        # bare KeyError: the metric, the scenario, the known names
        assert exc.value.metric == "nope"
        assert exc.value.scenario == "lossy_path"
        assert "goodput_bps" in exc.value.known
        message = str(exc.value)
        assert "declared contract" in message
        assert "'lossy_path'" in message
        assert not message.startswith('"')  # no KeyError repr-quoting

    def test_aggregate_unknown_metric_raises_contract_error(self, lossy):
        from repro.api import UnknownMetricError

        with pytest.raises(UnknownMetricError, match="declared contract"):
            lossy.aggregate("nope", over="seed")

    def test_filter_by_param_and_predicate(self, lossy):
        assert len(lossy.filter(protocol="tfrc")) == 2
        assert len(lossy.filter(lambda r: r.params["seed"] == 1)) == 2
        assert len(lossy.filter(lambda r: False)) == 0

    def test_filter_falls_back_to_metrics(self, lossy):
        goodput = lossy.value("goodput_bps", protocol="tcp", seed=0)
        assert len(lossy.filter(goodput_bps=goodput)) >= 1

    def test_filter_unknown_key_errors(self, lossy):
        with pytest.raises(KeyError, match="neither parameters nor metrics"):
            lossy.filter(not_a_thing=1)

    def test_filter_key_missing_from_some_records_is_a_non_match(self):
        # heterogeneous sets (or aggregated rows) may carry a key on
        # only part of the records: those lacking it are excluded, not
        # an error
        records = [
            RunRecord("h", {"x": 1, "extra": 7}, MappingResult({"a": 1.0})),
            RunRecord("h", {"x": 2}, MappingResult({"a": 2.0, "b": 3.0})),
        ]
        rs = ResultSet(records)
        assert [r.params["x"] for r in rs.filter(extra=7)] == [1]
        assert [r.params["x"] for r in rs.filter(b=3.0)] == [2]
        with pytest.raises(KeyError):
            rs.filter(nowhere=1)

    def test_group_by_preserves_grid_order(self, lossy):
        groups = lossy.group_by("protocol")
        assert list(groups) == ["tcp", "tfrc"]
        assert all(len(g) == 2 for g in groups.values())

    def test_group_by_multiple_keys(self, lossy):
        groups = lossy.group_by("protocol", "seed")
        assert list(groups)[0] == ("tcp", 0)
        assert all(len(g) == 1 for g in groups.values())


class TestAggregate:
    def test_mean_matches_hand_arithmetic(self, lossy):
        agg = lossy.aggregate("goodput_bps", over="seed", stats=("mean",))
        for proto in ("tcp", "tfrc"):
            values = [
                lossy.value("goodput_bps", protocol=proto, seed=s) for s in (0, 1)
            ]
            assert agg.value("goodput_bps_mean", protocol=proto) == (
                sum(values) / len(values)
            )

    def test_seed_axis_folded_away(self, lossy):
        agg = lossy.aggregate("goodput_bps", over="seed")
        assert len(agg) == 2
        assert "seed" not in agg.param_names
        assert agg.value("runs", protocol="tcp") == 2

    def test_percentile_and_minmax_stats(self, lossy):
        agg = lossy.aggregate(
            "goodput_bps", over="seed", stats=("min", "max", "p50")
        )
        lo = agg.value("goodput_bps_min", protocol="tcp")
        hi = agg.value("goodput_bps_max", protocol="tcp")
        mid = agg.value("goodput_bps_p50", protocol="tcp")
        assert lo <= mid <= hi

    def test_default_metrics_are_all_numeric(self, lossy):
        agg = lossy.aggregate(over="seed", stats=("mean",))
        summary = agg.one(protocol="tcp").metrics()
        assert "observed_loss_rate_mean" in summary
        assert "goodput_bps_mean" in summary

    def test_unknown_stat_rejected(self, lossy):
        with pytest.raises(ValueError, match="unknown statistic"):
            lossy.aggregate("goodput_bps", stats=("median",))

    def test_missing_metric_rejected(self, lossy):
        with pytest.raises(KeyError, match="nope"):
            lossy.aggregate("nope", over="seed")


class TestExports:
    def test_to_rows_headers_params_then_metrics(self, lossy):
        headers, rows = lossy.to_rows()
        assert headers == lossy.param_names + lossy.metric_names
        assert len(rows) == 4
        assert rows[0][headers.index("protocol")] == "tcp"

    def test_table_contains_title_and_values(self, lossy):
        text = lossy.table(title="my sweep")
        assert text.splitlines()[0] == "my sweep"
        assert "goodput_bps" in text

    def test_to_csv_round_trips(self, lossy, tmp_path):
        path = tmp_path / "out.csv"
        text = lossy.to_csv(path)
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0].startswith("loss_rate,")
        assert len(lines) == 5  # header + 4 runs

    def test_to_json_structure(self, lossy, tmp_path):
        path = tmp_path / "out.json"
        payload = json.loads(lossy.to_json(path))
        assert len(payload) == 4
        assert payload[0]["scenario"] == "lossy_path"
        assert payload[0]["params"]["protocol"] == "tcp"
        assert "goodput_bps" in payload[0]["metrics"]
        assert json.loads(path.read_text()) == payload


class TestLegacyResultShim:
    def test_mapping_result_adapts_raw_dicts(self):
        records = [
            RunRecord("legacy", {"x": 1}, {"a": 1.0, "series": [1, 2]}),
            RunRecord("legacy", {"x": 2}, {"a": 2.0, "series": [3]}),
        ]
        with pytest.warns(DeprecationWarning, match="legacy"):
            rs = ResultSet(records)
            assert rs.metric_names == ["a"]
        result = rs.one(x=1)
        assert isinstance(result, MappingResult)
        assert result.a == 1.0
        assert result["a"] == 1.0
        assert result.payload() == {"series": [1, 2]}

    def test_legacy_warning_fires_once_per_scenario(self):
        records = [RunRecord("legacy_once", {"x": 1}, {"a": 1.0})]
        with pytest.warns(DeprecationWarning):
            ResultSet(records).metric_names
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ResultSet(records).metric_names  # no second warning

    def test_scenarios_shim_module_warns_on_import(self):
        import importlib
        import sys

        sys.modules.pop("repro.harness.scenarios", None)
        with pytest.warns(DeprecationWarning, match="repro.harness.scenarios"):
            import repro.harness.scenarios  # noqa: F401
        # the flat names still resolve through the shim
        assert hasattr(
            importlib.import_module("repro.harness.scenarios"),
            "af_dumbbell_scenario",
        )


class TestScenarioResultContract:
    def test_every_registered_scenario_declares_a_result_type(self):
        from repro.harness.registry import list_scenarios

        for spec in list_scenarios():
            assert spec.result_type is not None, spec.name
            assert issubclass(spec.result_type, ScenarioResult), spec.name
            assert spec.result_type.metric_names(), spec.name

    def test_computed_metrics_are_appended(self):
        from repro.harness.experiments.af_assurance import AfResult

        names = AfResult.metric_names()
        assert names[-1] == "ratio"
        r = AfResult("qtpaf", 2e6, 2e6, 0.0, 0.0, 1e6)
        assert r.metrics()["ratio"] == 1.0

    def test_payload_excluded_from_metrics(self):
        from repro.harness.experiments.convergence import ConvergenceResult

        r = ConvergenceResult("tfrc", 1e6, 0.0, 0.0, 0.0, series_bps=[1.0])
        assert "series_bps" not in r.metrics()
        assert r.payload() == {"series_bps": [1.0]}

    def test_registering_without_contract_warns(self):
        from repro.harness import registry

        def raw_scenario(x: int = 0):
            return {"x": x}

        with pytest.warns(DeprecationWarning, match="ScenarioResult"):
            registry.register("raw_scenario_for_contract_test")(raw_scenario)
        try:
            spec = registry.get_scenario("raw_scenario_for_contract_test")
            assert spec.result_type is None
            # the raw-dict scenario still runs end to end via the shim
            rs = Experiment(spec).sweep(x=(1, 2)).run()
            with pytest.warns(DeprecationWarning, match="returned a dict"):
                assert rs.value("x", x=2) == 2
        finally:
            registry._REGISTRY.pop("raw_scenario_for_contract_test", None)
