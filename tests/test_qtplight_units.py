"""Unit tests for QTPlight machinery: sender-side estimation, lying filters."""

import pytest

from repro.core.qtplight import LyingFeedbackFilter, SenderLossEstimator
from repro.metrics.cost import CostMeter
from repro.sack.scoreboard import SentRecord
from repro.sim.packet import SackFeedbackHeader, TfrcFeedbackHeader


def rec(seq, send_time):
    return SentRecord(seq=seq, size=1000, send_time=send_time)


class TestSenderLossEstimator:
    def test_no_losses_zero_rate(self):
        est = SenderLossEstimator()
        est.on_acked([rec(i, i * 0.01) for i in range(50)])
        assert est.loss_event_rate() == 0.0

    def test_single_loss_event(self):
        est = SenderLossEstimator()
        est.on_acked([rec(i, i * 0.01) for i in range(100)])
        new = est.on_lost([rec(100, 1.0)], rtt=0.05)
        assert new is True
        assert est.loss_events == 1
        assert est.loss_event_rate() > 0

    def test_losses_within_rtt_cluster(self):
        est = SenderLossEstimator()
        est.on_acked([rec(i, i * 0.001) for i in range(100)])
        # three losses sent within 5 ms, rtt 50 ms: one event
        est.on_lost([rec(100, 1.0), rec(101, 1.002), rec(102, 1.004)], rtt=0.05)
        assert est.loss_events == 1

    def test_losses_beyond_rtt_separate(self):
        est = SenderLossEstimator()
        est.on_acked([rec(i, i * 0.001) for i in range(100)])
        est.on_lost([rec(100, 1.0)], rtt=0.05)
        est.on_acked([rec(i, 1.0 + (i - 100) * 0.001) for i in range(101, 200)])
        est.on_lost([rec(200, 2.0)], rtt=0.05)
        assert est.loss_events == 2
        # interval between events = 100 packets
        assert est.history.intervals[0] == pytest.approx(100)

    def test_open_interval_grows_with_acks(self):
        est = SenderLossEstimator()
        est.on_acked([rec(i, i * 0.001) for i in range(10)])
        est.on_lost([rec(10, 0.1)], rtt=0.01)
        p_before = est.loss_event_rate()
        est.on_acked([rec(i, 1.0) for i in range(11, 800)])
        assert est.loss_event_rate() < p_before

    def test_synthetic_first_interval_from_x_recv(self):
        est = SenderLossEstimator(segment_size=1000)
        est.on_acked([rec(i, i * 0.001) for i in range(5)])
        est.on_lost([rec(5, 0.1)], rtt=0.1, x_recv=125_000.0)
        # seeded interval should far exceed the raw 5 packets
        assert est.history.intervals[0] > 5

    def test_meter_charged(self):
        meter = CostMeter()
        est = SenderLossEstimator(meter=meter)
        est.on_acked([rec(0, 0.0)])
        est.on_lost([rec(1, 0.1)], rtt=0.05)
        assert meter.ops > 0


class TestLyingFilter:
    def test_tfrc_mangling(self):
        flt = LyingFeedbackFilter(p_scale=0.0, x_scale=2.0)
        hdr = TfrcFeedbackHeader(
            timestamp_echo=0.0, elapsed=0.0, x_recv=1000.0, p=0.05, last_seq=9
        )
        out = flt.mangle_tfrc(hdr)
        assert out.p == 0.0
        assert out.x_recv == 2000.0
        assert flt.mangled_reports == 1

    def test_sack_mangling_hides_holes(self):
        flt = LyingFeedbackFilter()
        hdr = SackFeedbackHeader(
            cum_ack=10, blocks=((15, 20),), timestamp_echo=0.0,
            elapsed=0.0, recv_bytes=5000, last_seq=19,
        )
        out = flt.mangle_sack(hdr)
        assert out.cum_ack == 19
        assert out.blocks == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            LyingFeedbackFilter(p_scale=-1)
        with pytest.raises(ValueError):
            LyingFeedbackFilter(x_scale=0.0)
