"""FluidSource dynamics: conservation, occupancy, floors (Hypothesis).

The fluid model's accounting must be conservative no matter what the
spec throws at it: every offered byte is served, dropped, queued in the
backlog or (elastic) pending retransmission.  These properties run the
source against a real compiled link — no mocking — across random kinds,
rates, epochs and queue disciplines.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fluid import BackgroundLoadSpec
from repro.sim.engine import Simulator
from repro.topo import build
from repro.topo.specs import (
    FlowSpec,
    LinkSpec,
    QueueSpec,
    ScenarioSpec,
    TopologySpec,
)

QUEUES = {
    "droptail": QueueSpec(kind="droptail", capacity_packets=50),
    "red": QueueSpec(kind="red"),
    "rio": QueueSpec(kind="rio"),
}


def run_source(background, duration, queue="rio", seed=0, flows=()):
    spec = ScenarioSpec(
        name="fluid_micro",
        topology=TopologySpec(
            links=(
                LinkSpec(
                    "a",
                    "b",
                    rate_bps=10e6,
                    delay=0.01,
                    queue=QUEUES[queue],
                    background=background,
                ),
            )
        ),
        flows=flows,
    )
    sim = Simulator(seed=seed)
    built = build(sim, spec)
    sim.run(until=duration)
    (source,) = built.fluid_sources.values()
    return sim, built, source


def assert_conservation(source):
    s = source.summary()
    balance = (
        s["served_bytes"]
        + s["dropped_bytes"]
        + s["backlog_bytes"]
        + s["pending_bytes"]
    )
    assert s["offered_bytes"] == pytest.approx(balance, rel=1e-9, abs=1e-6)


def background_specs():
    common = {
        "epoch": st.floats(min_value=0.02, max_value=0.1),
        "mean_pkt_bytes": st.floats(min_value=200.0, max_value=2000.0),
        "min_foreground_share": st.floats(min_value=0.05, max_value=0.95),
        "elastic": st.booleans(),
    }
    constant = st.builds(
        BackgroundLoadSpec,
        kind=st.just("constant"),
        rate_bps=st.floats(min_value=0.0, max_value=20e6),
        **common,
    )
    mmpp = st.builds(
        BackgroundLoadSpec,
        kind=st.just("mmpp"),
        rate_low_bps=st.floats(min_value=0.0, max_value=2e6),
        rate_high_bps=st.floats(min_value=0.0, max_value=20e6),
        mean_low_s=st.floats(min_value=0.05, max_value=1.0),
        mean_high_s=st.floats(min_value=0.05, max_value=1.0),
        **common,
    )
    population = st.builds(
        BackgroundLoadSpec,
        kind=st.just("population"),
        profile=st.lists(
            st.floats(min_value=0.0, max_value=100_000.0),
            min_size=1,
            max_size=40,
        ).map(tuple),
        **common,
    )
    return st.one_of(constant, mmpp, population)


class TestInvariants:
    @given(
        background=background_specs(),
        queue=st.sampled_from(sorted(QUEUES)),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_byte_conservation_and_nonnegative_state(
        self, background, queue, seed
    ):
        _, built, source = run_source(background, 2.0, queue=queue, seed=seed)
        assert_conservation(source)
        s = source.summary()
        assert s["offered_bytes"] >= 0.0
        assert s["served_bytes"] >= 0.0
        assert s["dropped_bytes"] >= 0.0
        assert s["backlog_bytes"] >= 0.0
        assert s["pending_bytes"] >= 0.0
        assert s["peak_backlog_bytes"] >= s["backlog_bytes"] - 1e-9
        assert source.queue.fluid_pkts >= 0
        # the foreground's guaranteed service floor always holds
        floor = source.base_rate_bps * background.min_foreground_share
        assert source.link.rate_bps >= floor - 1e-9
        assert source.link.rate_bps <= source.base_rate_bps + 1e-9

    @given(
        profile=st.lists(
            st.floats(min_value=0.0, max_value=50_000.0),
            min_size=1,
            max_size=30,
        ).map(tuple),
        epoch=st.floats(min_value=0.02, max_value=0.1),
    )
    @settings(max_examples=30, deadline=None)
    def test_population_offers_exactly_its_profile(self, profile, epoch):
        # offered-load conservation across epochs: once the profile is
        # consumed, the source has offered exactly its binned bytes
        background = BackgroundLoadSpec(
            kind="population", profile=profile, epoch=epoch
        )
        duration = epoch * (len(profile) + 5)
        _, built, source = run_source(background, duration)
        assert source.offered_bytes == pytest.approx(
            sum(profile), rel=1e-9, abs=1e-6
        )
        assert_conservation(source)

    def test_population_self_stop_restores_link(self):
        background = BackgroundLoadSpec(
            kind="population", profile=(40_000.0, 40_000.0), epoch=0.05
        )
        _, built, source = run_source(background, 3.0)
        assert not source.active
        assert source.queue.fluid_pkts == 0
        assert source.link.rate_bps == source.base_rate_bps

    def test_stop_time_restores_link(self):
        background = BackgroundLoadSpec(
            kind="constant", rate_bps=8e6, stop=1.0
        )
        _, built, source = run_source(background, 3.0)
        assert not source.active
        assert source.queue.fluid_pkts == 0
        assert source.link.rate_bps == source.base_rate_bps

    def test_elastic_retries_instead_of_dropping(self):
        # demand far over capacity: the inelastic aggregate loses bytes,
        # the elastic one keeps them pending/backlogged
        inelastic = BackgroundLoadSpec(kind="constant", rate_bps=40e6)
        _, _, src_i = run_source(inelastic, 2.0)
        assert src_i.dropped_bytes > 0
        elastic = BackgroundLoadSpec(
            kind="constant", rate_bps=40e6, elastic=True
        )
        _, _, src_e = run_source(elastic, 2.0)
        assert src_e.dropped_bytes == 0.0
        assert src_e.pending_bytes + src_e.backlog_bytes > 0
        assert_conservation(src_e)

    def test_conservation_with_packet_foreground(self):
        # the interesting case: a real TCP foreground perturbs residual
        # capacity every epoch, and the books must still balance
        background = BackgroundLoadSpec(
            kind="constant", rate_bps=6e6, elastic=True
        )
        flow = FlowSpec("fg", "a", "b", transport="tcp")
        _, built, source = run_source(background, 4.0, flows=(flow,))
        assert source.served_bytes > 0
        assert built.recorder("fg").delivered_bytes > 0
        assert_conservation(source)


class TestDeterminism:
    def test_mmpp_repeatable_and_seed_sensitive(self):
        background = BackgroundLoadSpec(
            kind="mmpp",
            rate_low_bps=1e6,
            rate_high_bps=9e6,
            mean_low_s=0.2,
            mean_high_s=0.2,
        )
        a = run_source(background, 3.0, seed=1)[2].summary()
        b = run_source(background, 3.0, seed=1)[2].summary()
        c = run_source(background, 3.0, seed=2)[2].summary()
        assert a == b
        assert a != c

    def test_non_mmpp_kinds_never_touch_the_rng_stream(self):
        # named-stream discipline: deterministic kinds must not even
        # create the stream, or they would shift later consumers
        background = BackgroundLoadSpec(kind="constant", rate_bps=5e6)
        sim, _, _ = run_source(background, 1.0)
        assert background.rng_stream not in sim._rngs
