"""Tests for the scenario registry, sweep runner, cache and CLI."""

import pytest

from repro.harness.cli import main as cli_main
from repro.harness.registry import get_scenario, list_scenarios
from repro.harness.runner import (
    CACHE_ENV,
    RunRecord,
    SqliteSweepCache,
    SweepCache,
    code_version,
    expand_grid,
    make_cache,
    run_matrix,
)

#: A small AF-assurance configuration every runner test shares; long
#: enough to exercise the full pipeline, short enough to stay tier-1.
AF_BASE = dict(n_cross=1, duration=3.0, warmup=1.0, bottleneck_bps=2e6)
AF_GRID = {"protocol": ("tcp", "gtfrc"), "target_bps": (5e5, 1e6)}


class TestRegistry:
    def test_all_canonical_scenarios_registered(self):
        names = {spec.name for spec in list_scenarios()}
        assert {
            "af_assurance",
            "smoothness",
            "lossy_path",
            "friendliness",
            "receiver_load",
            "estimation_accuracy",
            "selfish_receiver",
            "reliability_modes",
            "parking_lot",
            "reverse_path_chain",
            "hetero_sla",
        } <= names

    def test_unknown_scenario_raises_with_candidates(self):
        with pytest.raises(KeyError, match="af_assurance"):
            get_scenario("definitely_not_a_scenario")

    def test_schema_derived_from_signature(self):
        spec = get_scenario("af_assurance")
        assert spec.params["protocol"] is str
        assert spec.params["target_bps"] is float
        assert spec.params["n_cross"] is int
        assert spec.params["assured_access_delay"] is float  # Optional[float]
        assert spec.defaults["duration"] == 60.0
        assert "target_bps" not in spec.defaults

    def test_bind_rejects_unknown_parameters(self):
        spec = get_scenario("af_assurance")
        with pytest.raises(ValueError, match="no_such_param"):
            spec.bind({"protocol": "tcp", "no_such_param": 1})

    def test_coerce_cli_strings(self):
        spec = get_scenario("lossy_path")
        assert spec.coerce("loss_rate", "0.05") == 0.05
        assert spec.coerce("bursty", "true") is True
        assert spec.coerce("bursty", "0") is False
        assert spec.coerce("n_hops", "3") == 3
        assert spec.coerce("protocol", "tfrc") == "tfrc"
        af = get_scenario("af_assurance")
        assert af.coerce("assured_access_delay", "none") is None  # Optional

    def test_coerce_none_is_only_special_for_optional_params(self):
        # "none" is a real value for the reliability-mode axis...
        rel = get_scenario("reliability_modes")
        assert rel.coerce("mode", "none") == "none"
        # ...and a parse error for a required numeric parameter
        af = get_scenario("af_assurance")
        with pytest.raises(ValueError):
            af.coerce("n_cross", "none")

    def test_coerce_int_accepts_scientific_but_rejects_fractions(self):
        af = get_scenario("af_assurance")
        assert af.coerce("n_cross", "1e1") == 10
        with pytest.raises(ValueError, match="as int"):
            af.coerce("n_cross", "2.7")

    def test_default_grid_is_registered(self):
        spec = get_scenario("af_assurance")
        assert spec.default_grid["protocol"] == ("tcp", "tfrc", "gtfrc", "qtpaf")

    def test_coerce_unknown_parameter_fails_fast(self):
        spec = get_scenario("af_assurance")
        with pytest.raises(ValueError, match="no parameter 'nope'"):
            spec.coerce("nope", "1")

    def test_coerce_optional_accepts_null_spellings_case_insensitively(self):
        spec = get_scenario("af_assurance")
        for text in ("none", "NONE", "null", "Null"):
            assert spec.coerce("assured_access_delay", text) is None
        # a non-null string for an Optional[float] still parses as float
        assert spec.coerce("assured_access_delay", "0.05") == 0.05

    def test_coerce_bad_values_fail_fast(self):
        spec = get_scenario("lossy_path")
        with pytest.raises(ValueError):
            spec.coerce("loss_rate", "not-a-number")
        with pytest.raises(ValueError, match="as bool"):
            spec.coerce("bursty", "maybe")
        with pytest.raises(ValueError):
            spec.coerce("n_hops", "3.5")

    def test_coerce_bool_spellings(self):
        spec = get_scenario("lossy_path")
        for text, expected in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("False", False), ("no", False), ("OFF", False),
        ):
            assert spec.coerce("bursty", text) is expected

    def test_bind_fills_nothing_and_keeps_extras_out(self):
        spec = get_scenario("af_assurance")
        params = {"protocol": "tcp", "target_bps": 1e6}
        bound = spec.bind(params)
        assert bound == params
        assert bound is not params  # a defensive copy

    def test_bind_reports_every_missing_required_param(self):
        spec = get_scenario("lossy_path")
        with pytest.raises(ValueError) as excinfo:
            spec.bind({})
        message = str(excinfo.value)
        assert "loss_rate" in message and "protocol" in message

    def test_bind_reports_every_unknown_param(self):
        spec = get_scenario("lossy_path")
        with pytest.raises(ValueError) as excinfo:
            spec.bind({"protocol": "tcp", "loss_rate": 0.01, "a": 1, "b": 2})
        message = str(excinfo.value)
        assert "'a'" in message and "'b'" in message

    def test_optional_params_detected_from_union_syntax(self):
        # Optional[float] on af_assurance; plain params are not optional
        spec = get_scenario("af_assurance")
        assert "assured_access_delay" in spec.optional
        assert "protocol" not in spec.optional
        # "none" stays a real value for a plain str parameter
        assert spec.coerce("protocol", "none") == "none"


class TestExpandGrid:
    def test_cross_product_in_insertion_order(self):
        points = expand_grid({"a": (1, 2), "b": ("x", "y")})
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_empty_grid_is_single_point(self):
        assert expand_grid({}) == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_grid({"a": ()})


class TestRunMatrix:
    def test_same_grid_twice_identical_records(self):
        first = run_matrix("af_assurance", AF_GRID, base=AF_BASE, seeds=(0, 1))
        second = run_matrix("af_assurance", AF_GRID, base=AF_BASE, seeds=(0, 1))
        assert len(first) == 8  # 2 protocols x 2 targets x 2 seeds
        assert first == second  # RunRecord equality ignores timing metadata

    def test_records_in_grid_order_with_seeds_fastest(self):
        records = run_matrix("af_assurance", AF_GRID, base=AF_BASE, seeds=(0, 1))
        combos = [
            (r.params["protocol"], r.params["target_bps"], r.seed) for r in records
        ]
        assert combos == [
            ("tcp", 5e5, 0), ("tcp", 5e5, 1),
            ("tcp", 1e6, 0), ("tcp", 1e6, 1),
            ("gtfrc", 5e5, 0), ("gtfrc", 5e5, 1),
            ("gtfrc", 1e6, 0), ("gtfrc", 1e6, 1),
        ]

    def test_two_workers_match_serial(self):
        serial = run_matrix("af_assurance", AF_GRID, base=AF_BASE, workers=1)
        parallel = run_matrix("af_assurance", AF_GRID, base=AF_BASE, workers=2)
        assert serial == parallel
        assert [r.params for r in serial] == [r.params for r in parallel]

    def test_invalid_parameter_fails_before_running(self):
        with pytest.raises(ValueError, match="bogus"):
            run_matrix("af_assurance", {"bogus": (1, 2)}, base=AF_BASE)

    def test_missing_required_parameter_fails_before_running(self):
        # a grid replaces the default grid, so dropping target_bps must
        # raise upfront, not TypeError inside a worker
        with pytest.raises(ValueError, match="target_bps"):
            run_matrix("af_assurance", {"protocol": ("tcp",)}, base=AF_BASE)

    def test_seeds_conflicting_with_seed_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="already sweeps 'seed'"):
            run_matrix(
                "smoothness", {"protocol": ("tfrc",), "seed": (0, 1)}, seeds=(7,)
            )

    def test_one_shot_seed_iterable_fully_expanded(self):
        records = run_matrix(
            "selfish_receiver",
            {"mode": ("tfrc", "qtplight")},
            base=dict(lying=False, duration=2.0, warmup=0.5),
            seeds=iter([0, 1]),
        )
        assert len(records) == 4

    def test_default_grid_used_when_none_given(self):
        records = run_matrix(
            "selfish_receiver", base=dict(duration=2.0, warmup=0.5)
        )
        assert len(records) == 4  # mode x lying default grid
        assert {(r.params["mode"], r.params["lying"]) for r in records} == {
            ("tfrc", False), ("tfrc", True),
            ("qtplight", False), ("qtplight", True),
        }


class TestSweepCache:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache_dir = tmp_path / "memo"
        first = run_matrix(
            "af_assurance", AF_GRID, base=AF_BASE, cache_dir=cache_dir
        )
        assert all(not r.cached for r in first)
        assert len(list(cache_dir.glob("af_assurance-*.pkl"))) == 4
        second = run_matrix(
            "af_assurance", AF_GRID, base=AF_BASE, cache_dir=cache_dir
        )
        assert all(r.cached for r in second)
        assert second == first

    def test_partial_grid_reuses_overlapping_runs(self, tmp_path):
        cache_dir = tmp_path / "memo"
        run_matrix("af_assurance", AF_GRID, base=AF_BASE, cache_dir=cache_dir)
        wider = {"protocol": ("tcp", "gtfrc", "qtpaf"), "target_bps": (5e5, 1e6)}
        records = run_matrix(
            "af_assurance", wider, base=AF_BASE, cache_dir=cache_dir
        )
        by_proto = {}
        for r in records:
            by_proto.setdefault(r.params["protocol"], []).append(r.cached)
        assert all(by_proto["tcp"]) and all(by_proto["gtfrc"])
        assert not any(by_proto["qtpaf"])

    def test_key_depends_on_params_seed_and_code_version(self, tmp_path):
        cache = SweepCache(tmp_path)
        base = {"protocol": "tcp", "seed": 0}
        assert cache.key("af_assurance", base) == cache.key("af_assurance", base)
        assert cache.key("af_assurance", base) != cache.key("smoothness", base)
        assert cache.key("af_assurance", base) != cache.key(
            "af_assurance", {"protocol": "tcp", "seed": 1}
        )
        assert cache.key("af_assurance", base) != cache.key(
            "af_assurance", {"protocol": "tfrc", "seed": 0}
        )
        assert len(code_version()) == 16

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache_dir = tmp_path / "memo"
        run_matrix(
            "selfish_receiver",
            {"mode": ("tfrc",), "lying": (False,)},
            base=dict(duration=2.0, warmup=0.5),
            cache_dir=cache_dir,
        )
        for path in cache_dir.glob("*.pkl"):
            # a bogus pickle frame header raises OverflowError, not
            # UnpicklingError — load() must treat any garbage as a miss
            path.write_bytes(b"\x80\x05\x95\xff\xff\xff\xff\xff\xff\xff\xff")
        records = run_matrix(
            "selfish_receiver",
            {"mode": ("tfrc",), "lying": (False,)},
            base=dict(duration=2.0, warmup=0.5),
            cache_dir=cache_dir,
        )
        assert not records[0].cached


class TestSqliteSweepCache:
    GRID = {"mode": ("tfrc",), "lying": (False,)}
    BASE = dict(duration=2.0, warmup=0.5)

    def test_round_trip_and_shared_key(self, tmp_path):
        cache = SqliteSweepCache(tmp_path / "results.db")
        record = RunRecord(
            scenario="af_assurance",
            params={"protocol": "tcp", "seed": 0},
            result={"achieved": 1.0},
        )
        assert cache.load(record.scenario, record.params) is None
        cache.store(record)
        loaded = cache.load(record.scenario, record.params)
        assert loaded == record and loaded.cached
        # both backends hash the identical memo contract
        assert cache.key("af_assurance", record.params) == SweepCache(
            tmp_path
        ).key("af_assurance", record.params)

    def test_env_selects_sqlite_backend(self, tmp_path, monkeypatch):
        db = tmp_path / "sweep.db"
        monkeypatch.setenv(CACHE_ENV, f"sqlite:{db}")
        first = run_matrix(
            "selfish_receiver", self.GRID, base=self.BASE,
            cache_dir=tmp_path / "ignored-dir",
        )
        assert not first[0].cached
        assert db.exists()
        assert not (tmp_path / "ignored-dir").exists()
        second = run_matrix(
            "selfish_receiver", self.GRID, base=self.BASE,
            cache_dir=tmp_path / "ignored-dir",
        )
        assert second[0].cached and second == first

    def test_sqlite_file_is_shareable(self, tmp_path, monkeypatch):
        # a db produced by one "host" (directory) hits from another
        db = tmp_path / "ci" / "results.db"
        monkeypatch.setenv(CACHE_ENV, f"sqlite:{db}")
        run_matrix("selfish_receiver", self.GRID, base=self.BASE,
                   cache_dir=tmp_path / "a")
        copied = tmp_path / "elsewhere.db"
        copied.write_bytes(db.read_bytes())
        monkeypatch.setenv(CACHE_ENV, f"sqlite:{copied}")
        records = run_matrix("selfish_receiver", self.GRID, base=self.BASE,
                             cache_dir=tmp_path / "b")
        assert records[0].cached

    def test_no_cache_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, f"sqlite:{tmp_path / 'x.db'}")
        assert make_cache(None) is None

    def test_unset_env_uses_directory_backend(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert isinstance(make_cache(tmp_path), SweepCache)

    def test_bad_env_values_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, "sqlite:")
        with pytest.raises(ValueError, match="needs a path"):
            make_cache(tmp_path)
        monkeypatch.setenv(CACHE_ENV, "redis:localhost")
        with pytest.raises(ValueError, match="unknown"):
            make_cache(tmp_path)

    def test_corrupt_blob_is_a_miss(self, tmp_path):
        import sqlite3

        cache = SqliteSweepCache(tmp_path / "results.db")
        record = RunRecord(scenario="s", params={"seed": 0}, result=1)
        cache.store(record)
        with sqlite3.connect(cache.path) as conn:
            conn.execute("UPDATE results SET payload = ?", (b"garbage",))
        assert cache.load("s", {"seed": 0}) is None


class TestCli:
    def test_list_names_scenarios(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "af_assurance" in out and "smoothness" in out

    def test_run_prints_table_and_summary(self, capsys, tmp_path):
        code = cli_main(
            [
                "run", "af_assurance",
                "--sweep", "protocol=tcp,gtfrc",
                "--set", "target_bps=1e6",
                "--set", "duration=3.0",
                "--set", "warmup=1.0",
                "--set", "n_cross=1",
                "--cache-dir", str(tmp_path / "memo"),
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: af_assurance" in out
        assert "achieved_bps" in out
        assert "2 runs (2 computed, 0 cached)" in out
        # a second invocation is served entirely from the memo
        assert cli_main(
            [
                "run", "af_assurance",
                "--sweep", "protocol=tcp,gtfrc",
                "--set", "target_bps=1e6",
                "--set", "duration=3.0",
                "--set", "warmup=1.0",
                "--set", "n_cross=1",
                "--cache-dir", str(tmp_path / "memo"),
                "--quiet",
            ]
        ) == 0
        assert "(0 computed, 2 cached)" in capsys.readouterr().out

    def test_run_format_json_is_pure_data(self, capsys):
        import json

        code = cli_main(
            [
                "run", "negotiation",
                "--sweep", "pair=default/default,server/mobile",
                "--no-cache", "--format", "json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout parses as-is
        assert [entry["params"]["pair"] for entry in payload] == [
            "default/default", "server/mobile",
        ]
        assert all(entry["scenario"] == "negotiation" for entry in payload)
        # per-run progress moved to stderr for machine-readable formats
        assert "[" in captured.err

    def test_run_format_csv_is_pure_data(self, capsys):
        code = cli_main(
            [
                "run", "negotiation",
                "--sweep", "pair=default/default",
                "--no-cache", "--quiet", "--format", "csv",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("pair,")
        assert len(lines) == 2
        assert lines[1].startswith("default/default,")

    def test_run_format_table_is_default_with_summary(self, capsys):
        assert cli_main(
            ["run", "negotiation", "--sweep", "pair=default/default",
             "--no-cache", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep: negotiation" in out
        assert "1 runs (1 computed, 0 cached)" in out

    def test_run_unknown_scenario_errors(self, capsys):
        assert cli_main(["run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_bad_sweep_spec_errors(self, capsys):
        assert cli_main(["run", "af_assurance", "--sweep", "protocol"]) == 2
        assert "--sweep needs" in capsys.readouterr().err

    def test_run_duplicate_sweep_axis_errors(self, capsys):
        code = cli_main(
            [
                "run", "af_assurance",
                "--sweep", "protocol=tcp",
                "--sweep", "protocol=gtfrc",
            ]
        )
        assert code == 2
        assert "given twice" in capsys.readouterr().err

    def test_run_missing_required_param_errors_cleanly(self, capsys):
        code = cli_main(
            ["run", "af_assurance", "--sweep", "protocol=tcp", "--quiet"]
        )
        assert code == 2
        assert "missing required parameter" in capsys.readouterr().err

    # bench flag plumbing: every error path below fails *before* the
    # measurement suite runs, so these stay tier-1 fast
    def test_bench_update_current_requires_existing_record(self, capsys, tmp_path):
        code = cli_main(
            ["bench", "--update-current", "--output", str(tmp_path / "none.json")]
        )
        assert code == 2
        assert "no committed record" in capsys.readouterr().err

    def test_bench_update_current_excludes_rebaseline(self, capsys, tmp_path):
        code = cli_main(
            [
                "bench", "--update-current", "--rebaseline",
                "--output", str(tmp_path / "none.json"),
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bench_rebaseline_excludes_check(self, capsys, tmp_path):
        code = cli_main(
            [
                "bench", "--rebaseline", "--check",
                "--output", str(tmp_path / "none.json"),
            ]
        )
        assert code == 2
        assert "read-only" in capsys.readouterr().err

    def test_bench_update_current_excludes_check(self, capsys, tmp_path):
        code = cli_main(
            [
                "bench", "--update-current", "--check",
                "--output", str(tmp_path / "none.json"),
            ]
        )
        assert code == 2
        assert "two invocations" in capsys.readouterr().err

    def test_bench_check_rejects_malformed_record(self, capsys, tmp_path):
        # a hand-edited/truncated record must fail before the (slow)
        # measurement run, with a message naming the remedy
        path = tmp_path / "bench.json"
        path.write_text('{"schema": 1, "suite": [], "current": {}}')
        code = cli_main(["bench", "--check", "--output", str(path)])
        assert code == 2
        assert "no current-metrics section" in capsys.readouterr().err

    def test_check_regression_flags_malformed_entries(self):
        from repro.harness import bench as bench_mod

        committed = {
            "current": {"metrics": {"engine_events": "oops"}}
        }
        fresh = {"engine_events": {"rate": 1.0, "seconds": 1.0}}
        failures = bench_mod.check_regression(committed, fresh)
        assert len(failures) == 1
        assert "malformed" in failures[0]

    def test_bench_update_current_tolerates_null_baseline(self, tmp_path):
        # a record written before any baseline exists stores
        # "baseline": null; a later write must not crash on it
        from repro.harness import bench as bench_mod

        path = tmp_path / "bench.json"
        metrics = {"engine_events": {"rate": 100.0, "seconds": 1.0}}
        first = bench_mod.write_record(path, metrics)
        assert first["baseline"] is None
        second = bench_mod.write_record(
            path, {"engine_events": {"rate": 120.0, "seconds": 0.8}}
        )
        assert second["baseline"] is None
        assert second["current"]["metrics"]["engine_events"]["rate"] == 120.0

    def test_bench_check_requires_existing_record(self, capsys, tmp_path):
        code = cli_main(
            ["bench", "--check", "--output", str(tmp_path / "none.json")]
        )
        assert code == 2
        assert "no committed record" in capsys.readouterr().err

    def test_bench_help_documents_machine_relative_caveat(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["bench", "--help"])
        assert "machine-relative" in capsys.readouterr().out


class TestRunRecord:
    def test_equality_ignores_timing_metadata(self):
        a = RunRecord("s", {"seed": 1}, result=3.0, elapsed=1.0, worker_pid=10)
        b = RunRecord("s", {"seed": 1}, result=3.0, elapsed=9.0, cached=True)
        assert a == b
        assert a.seed == 1
        assert RunRecord("s", {}, None).seed is None

class TestWarmPool:
    """The persistent worker pool reused across run_matrix calls (PR 4)."""

    SMALL = dict(n_cross=1, duration=2.0, warmup=0.5, bottleneck_bps=2e6)

    def test_second_call_reuses_the_pool(self):
        from repro.harness.runner import shutdown_warm_pool, warm_pool_stats

        shutdown_warm_pool()
        before = warm_pool_stats()
        grid = {"protocol": ("tcp", "gtfrc")}
        first = run_matrix("af_assurance", grid,
                           base={**self.SMALL, "target_bps": 1e6}, workers=2)
        second = run_matrix("af_assurance", grid,
                            base={**self.SMALL, "target_bps": 1e6}, workers=2)
        stats = warm_pool_stats()
        assert stats["created"] == before["created"] + 1
        assert stats["reused"] >= before["reused"] + 1
        assert first == second

    def test_warm_records_identical_to_cold_serial(self):
        import pickle

        from repro.harness.runner import shutdown_warm_pool

        grid = {"protocol": ("tcp", "gtfrc")}
        base = {**self.SMALL, "target_bps": 1e6}
        warm = run_matrix("af_assurance", grid, base=base, workers=2)
        shutdown_warm_pool()
        cold = run_matrix("af_assurance", grid, base=base, workers=1)
        assert warm == cold
        # byte-identical payloads, not just dataclass equality.  Fields
        # are pickled separately: a combined pickle also encodes object
        # *sharing* between params and result (an in-process record can
        # alias the same float object in both), which IPC neither can
        # nor should preserve.
        for w, c in zip(warm, cold):
            assert pickle.dumps(w.scenario) == pickle.dumps(c.scenario)
            assert pickle.dumps(w.params) == pickle.dumps(c.params)
            assert pickle.dumps(w.result) == pickle.dumps(c.result)

    def test_worker_count_change_retires_the_pool(self):
        from repro.harness.runner import shutdown_warm_pool, warm_pool_stats

        shutdown_warm_pool()
        grid = {"protocol": ("tcp", "gtfrc")}
        base = {**self.SMALL, "target_bps": 1e6}
        run_matrix("af_assurance", grid, base=base, workers=2)
        created = warm_pool_stats()["created"]
        run_matrix("af_assurance", grid, base=base, workers=3)
        assert warm_pool_stats()["created"] == created + 1

    def test_worker_error_keeps_the_pool_warm(self):
        # PR 7 regression guard: a crashing cell used to discard the
        # warm pool; now the pool survives a failed section and the
        # *next* sweep reuses it (repaired, not recreated).
        from repro.harness import runner as runner_mod
        from repro.harness.runner import warm_pool_stats

        runner_mod.shutdown_warm_pool()
        with pytest.raises(ValueError):
            run_matrix(
                "af_assurance",
                {"protocol": ("tcp", "nope-not-a-protocol")},
                base={**self.SMALL, "target_bps": 1e6},
                workers=2,
            )
        assert runner_mod._WARM_POOL is not None
        before = warm_pool_stats()
        records = run_matrix(
            "af_assurance",
            {"protocol": ("tcp", "qtpaf")},
            base={**self.SMALL, "target_bps": 1e6},
            workers=2,
        )
        after = warm_pool_stats()
        assert len(records) == 2
        assert after["created"] == before["created"]  # no new pool
        assert after["reused"] == before["reused"] + 1

    def test_shutdown_is_idempotent(self):
        from repro.harness.runner import shutdown_warm_pool

        shutdown_warm_pool()
        shutdown_warm_pool()

    def test_run_record_positional_pickle_roundtrip(self):
        import pickle

        record = RunRecord("s", {"seed": 3}, result={"x": 1.5},
                           elapsed=0.25, cached=False, worker_pid=77)
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record
        assert clone.elapsed == 0.25 and clone.worker_pid == 77


def _stress_store(args):
    """Top-level worker: hammer one sqlite cache with stores.

    The tiny connection timeout defeats sqlite's own busy wait, so
    genuine ``database is locked`` errors surface under contention and
    the cache's bounded-backoff retry layer has to absorb them — with
    the default 30 s timeout the stress test never exercised it.
    """
    path, worker, n_records = args
    cache = SqliteSweepCache(path, timeout=0.05)
    for i in range(n_records):
        cache.store(
            RunRecord(
                scenario="stress",
                params={"worker": worker, "i": i, "seed": i},
                result={"value": worker * 1000 + i},
            )
        )
    return worker


class TestSqliteConcurrency:
    def test_concurrent_writers_do_not_corrupt_the_store(self, tmp_path):
        import multiprocessing

        path = tmp_path / "stress.db"
        n_procs, n_records = 6, 40
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=n_procs) as pool:
            done = pool.map(
                _stress_store,
                [(path, w, n_records) for w in range(n_procs)],
            )
        assert sorted(done) == list(range(n_procs))
        # every row must be durably present...
        import sqlite3

        with sqlite3.connect(path, timeout=30.0) as conn:
            count = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        assert count == n_procs * n_records
        # ...and immediately loadable through the cache API — with the
        # writers done there is no contention left, and the retry layer
        # inside load() absorbs any WAL-checkpoint stragglers, so a
        # miss here is a real bug (PR 4's version of this test allowed
        # a manual retry loop; the cache now owns that)
        cache = SqliteSweepCache(path)
        for worker in range(n_procs):
            for i in range(n_records):
                params = {"worker": worker, "i": i, "seed": i}
                record = cache.load("stress", params)
                assert record is not None, (worker, i)
                assert record.result == {"value": worker * 1000 + i}
                assert record.cached

    def test_store_retries_transient_lock_then_succeeds(self, tmp_path,
                                                        monkeypatch):
        import contextlib
        import sqlite3

        monkeypatch.setattr(SqliteSweepCache, "LOCK_BACKOFF", 0.001)
        cache = SqliteSweepCache(tmp_path / "locked.db")
        real_connect = cache._connect
        attempts = {"n": 0}

        @contextlib.contextmanager
        def flaky_connect():
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise sqlite3.OperationalError("database is locked")
            with real_connect() as conn:
                yield conn

        cache._connect = flaky_connect
        record = RunRecord(scenario="s", params={"seed": 0}, result=7)
        cache.store(record)  # must not raise
        assert attempts["n"] == 3
        loaded = cache.load("s", {"seed": 0})
        assert loaded is not None and loaded.result == 7

    def test_load_retries_transient_lock_then_succeeds(self, tmp_path,
                                                       monkeypatch):
        import contextlib
        import sqlite3

        monkeypatch.setattr(SqliteSweepCache, "LOCK_BACKOFF", 0.001)
        cache = SqliteSweepCache(tmp_path / "locked.db")
        cache.store(RunRecord(scenario="s", params={"seed": 1}, result=9))
        real_connect = cache._connect
        attempts = {"n": 0}

        @contextlib.contextmanager
        def flaky_connect():
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise sqlite3.OperationalError("database is locked")
            with real_connect() as conn:
                yield conn

        cache._connect = flaky_connect
        loaded = cache.load("s", {"seed": 1})
        assert loaded is not None and loaded.result == 9
        assert attempts["n"] == 3

    def test_non_lock_operational_errors_are_not_retried(self, tmp_path,
                                                         monkeypatch):
        import contextlib
        import sqlite3

        monkeypatch.setattr(SqliteSweepCache, "LOCK_BACKOFF", 0.001)
        cache = SqliteSweepCache(tmp_path / "broken.db")
        attempts = {"n": 0}

        @contextlib.contextmanager
        def broken_connect():
            attempts["n"] += 1
            raise sqlite3.OperationalError("no such table: results")
            yield  # pragma: no cover

        cache._connect = broken_connect
        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            cache.store(
                RunRecord(scenario="s", params={"seed": 2}, result=1)
            )
        assert attempts["n"] == 1  # failed fast, no backoff loop

    def test_persistent_lock_exhausts_retries_and_raises(self, tmp_path,
                                                         monkeypatch):
        import contextlib
        import sqlite3

        monkeypatch.setattr(SqliteSweepCache, "LOCK_BACKOFF", 0.001)
        cache = SqliteSweepCache(tmp_path / "stuck.db")
        attempts = {"n": 0}

        @contextlib.contextmanager
        def stuck_connect():
            attempts["n"] += 1
            raise sqlite3.OperationalError("database is locked")
            yield  # pragma: no cover

        cache._connect = stuck_connect
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            cache.store(
                RunRecord(scenario="s", params={"seed": 3}, result=1)
            )
        assert attempts["n"] == SqliteSweepCache.LOCK_RETRIES

    def test_wal_mode_is_enabled(self, tmp_path):
        import sqlite3

        path = tmp_path / "wal.db"
        SqliteSweepCache(path).store(
            RunRecord(scenario="s", params={"seed": 0}, result=1)
        )
        with sqlite3.connect(path) as conn:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"


class TestBenchHistory:
    def test_history_rejected_with_check(self, capsys, tmp_path):
        code = cli_main(
            ["bench", "--check", "--history", str(tmp_path / "hist"),
             "--output", str(tmp_path / "none.json")]
        )
        assert code == 2
        assert "read-only" in capsys.readouterr().err

    def test_append_history_writes_timestamped_snapshots(self, tmp_path):
        from repro.harness import bench as bench_mod

        record = {"schema": 1, "current": {"metrics": {}}}
        first = bench_mod.append_history(tmp_path / "hist", record)
        second = bench_mod.append_history(tmp_path / "hist", record)
        assert first.exists() and second.exists()
        assert first != second  # same-second runs get a suffix, not a clobber
        assert first.name.startswith("BENCH_") and first.suffix == ".json"
        import json

        assert json.loads(first.read_text()) == record


class TestWarmPoolRegistryKey:
    def test_scenario_registered_after_fork_retires_the_pool(self):
        # forked workers carry the registry of their fork moment; a
        # scenario registered afterwards must force a re-fork, not a
        # KeyError inside a stale worker
        from repro.harness import runner as runner_mod
        from repro.harness.registry import _REGISTRY, register

        runner_mod.shutdown_warm_pool()
        base = dict(n_cross=1, duration=2.0, warmup=0.5,
                    bottleneck_bps=2e6, target_bps=1e6)
        run_matrix("af_assurance", {"protocol": ("tcp", "gtfrc")},
                   base=base, workers=2)
        created = runner_mod.warm_pool_stats()["created"]

        with pytest.warns(DeprecationWarning):  # raw-dict return contract

            @register("wp_dynamic_probe", grid={})
            def wp_dynamic_probe(seed: int = 0) -> dict:
                return {"seed": seed, "value": seed * 2}

        try:
            records = run_matrix("wp_dynamic_probe", {"seed": (0, 1)},
                                 workers=2)
            assert [r.result["value"] for r in records] == [0, 2]
            assert runner_mod.warm_pool_stats()["created"] == created + 1
        finally:
            _REGISTRY.pop("wp_dynamic_probe", None)
            runner_mod.shutdown_warm_pool()


class TestWarmPoolConcurrency:
    def test_concurrent_mismatched_sweeps_both_complete(self):
        # thread B's different worker count must not terminate the pool
        # thread A is mid-sweep on; B gets a transient pool instead
        import threading

        from repro.harness import runner as runner_mod

        runner_mod.shutdown_warm_pool()
        base = dict(n_cross=1, duration=2.0, warmup=0.5,
                    bottleneck_bps=2e6, target_bps=1e6)
        grid = {"protocol": ("tcp", "gtfrc"), "seed": (0, 1)}
        results = {}
        errors = []

        def sweep(tag, workers):
            try:
                results[tag] = run_matrix("af_assurance", grid, base=base,
                                          workers=workers)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append((tag, exc))

        threads = [
            threading.Thread(target=sweep, args=("a", 2)),
            threading.Thread(target=sweep, args=("b", 3)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        serial = run_matrix("af_assurance", grid, base=base, workers=1)
        assert results["a"] == serial
        assert results["b"] == serial
        runner_mod.shutdown_warm_pool()
