"""Unit tests for token buckets and srTCM/trTCM meters."""

import pytest

from repro.qos.meters import SrTcmMeter, TokenBucket, TrTcmMeter
from repro.sim.packet import Color


class TestTokenBucket:
    def test_starts_full(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=500)
        assert tb.peek(0.0) == 500

    def test_consume_and_refill(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)  # 1000 B/s fill
        assert tb.try_consume(1000, 0.0)
        assert not tb.try_consume(1, 0.0)
        assert tb.try_consume(500, 0.5)  # refilled 500 B after 0.5 s
        assert not tb.try_consume(1, 0.5)

    def test_never_exceeds_burst(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=100)
        assert tb.peek(1000.0) == 100

    def test_clock_does_not_go_backwards(self):
        tb = TokenBucket(rate_bps=8000, burst_bytes=1000)
        tb.try_consume(1000, 1.0)
        before = tb.peek(1.0)
        assert tb.peek(0.5) == before  # stale timestamp ignored

    def test_validates_args(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=-1, burst_bytes=100)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=100, burst_bytes=0)


class TestSrTcm:
    def test_green_within_committed_burst(self):
        m = SrTcmMeter(cir_bps=8000, cbs_bytes=3000, ebs_bytes=1000)
        assert m.color_of(1000, 0.0) is Color.GREEN
        assert m.color_of(1000, 0.0) is Color.GREEN
        assert m.color_of(1000, 0.0) is Color.GREEN

    def test_yellow_from_excess_bucket(self):
        m = SrTcmMeter(cir_bps=8000, cbs_bytes=1000, ebs_bytes=1000)
        assert m.color_of(1000, 0.0) is Color.GREEN
        assert m.color_of(1000, 0.0) is Color.YELLOW
        assert m.color_of(1000, 0.0) is Color.RED

    def test_red_without_excess(self):
        m = SrTcmMeter(cir_bps=8000, cbs_bytes=1000, ebs_bytes=0)
        assert m.color_of(1000, 0.0) is Color.GREEN
        assert m.color_of(1000, 0.0) is Color.RED

    def test_steady_rate_at_cir_stays_green(self):
        cir = 8000.0  # 1000 bytes/s
        m = SrTcmMeter(cir_bps=cir, cbs_bytes=2000)
        colors = [m.color_of(1000, t * 1.0) for t in range(1, 20)]
        assert all(c is Color.GREEN for c in colors)

    def test_rate_above_cir_goes_out_of_profile(self):
        m = SrTcmMeter(cir_bps=8000, cbs_bytes=2000)
        colors = [m.color_of(1000, t * 0.25) for t in range(1, 40)]
        assert Color.RED in colors
        green_share = sum(1 for c in colors if c is Color.GREEN) / len(colors)
        assert 0.1 < green_share < 0.5  # ~1000 of 4000 B/s in profile

    def test_counts(self):
        m = SrTcmMeter(cir_bps=8000, cbs_bytes=1000)
        m.color_of(1000, 0.0)
        m.color_of(1000, 0.0)
        assert m.counts[Color.GREEN] == 1
        assert m.counts[Color.RED] == 1

    def test_validates_args(self):
        with pytest.raises(ValueError):
            SrTcmMeter(cir_bps=0, cbs_bytes=100)


class TestTrTcm:
    def test_green_within_both_rates(self):
        m = TrTcmMeter(cir_bps=8000, cbs_bytes=2000, pir_bps=16000, pbs_bytes=2000)
        assert m.color_of(1000, 0.0) is Color.GREEN

    def test_yellow_between_cir_and_pir(self):
        m = TrTcmMeter(cir_bps=8000, cbs_bytes=1000, pir_bps=80000, pbs_bytes=4000)
        assert m.color_of(1000, 0.0) is Color.GREEN
        assert m.color_of(1000, 0.0) is Color.YELLOW

    def test_red_above_peak(self):
        m = TrTcmMeter(cir_bps=8000, cbs_bytes=1000, pir_bps=16000, pbs_bytes=1000)
        assert m.color_of(1000, 0.0) is Color.GREEN
        assert m.color_of(1000, 0.0) is Color.RED  # peak bucket empty

    def test_peak_must_cover_committed(self):
        with pytest.raises(ValueError):
            TrTcmMeter(cir_bps=16000, cbs_bytes=1000, pir_bps=8000, pbs_bytes=1000)
