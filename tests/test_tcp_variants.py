"""Variant and edge-case tests for the TCP baseline."""

import pytest

from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.queues import DropTailQueue
from repro.sim.topology import chain, dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender


def lossy_run(seed=5, loss=0.03, duration=30, **sender_kw):
    sim = Simulator(seed=seed)
    topo = chain(
        sim, n_hops=1, rate=4e6, delay=0.02,
        channel_factory=lambda: BernoulliLossChannel(loss, rng=sim.rng("l")),
    )
    rec = FlowRecorder()
    snd = TcpSender(sim, dst=topo.last.name, **sender_kw).attach(topo.first, "f")
    rcv = TcpReceiver(sim, recorder=rec, sack=sender_kw.get("sack", False)).attach(
        topo.last, "f"
    )
    snd.start()
    sim.run(until=duration)
    return snd, rcv, rec


class TestVariants:
    def test_reno_without_newreno_survives(self):
        snd, _, rec = lossy_run(newreno=False, loss=0.02)
        assert rec.mean_rate_bps(5, 30) > 2e5
        assert snd.fast_retransmits > 0

    def test_newreno_at_least_as_good_as_reno(self):
        _, _, rec_reno = lossy_run(newreno=False, loss=0.03)
        _, _, rec_nr = lossy_run(newreno=True, loss=0.03)
        assert rec_nr.mean_rate_bps(5, 30) > 0.7 * rec_reno.mean_rate_bps(5, 30)

    def test_max_cwnd_clamps_rate(self):
        sim = Simulator(seed=1)
        d = dumbbell(sim, n_pairs=1, bottleneck_rate=8e6, bottleneck_delay=0.05,
                     bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=200))
        rec = FlowRecorder()
        snd = TcpSender(sim, dst="d0", max_cwnd=10.0).attach(d.net.node("s0"), "f")
        TcpReceiver(sim, recorder=rec).attach(d.net.node("d0"), "f")
        snd.start()
        sim.run(until=20)
        # rate ~ cwnd * mss / rtt = 10 * 1000B / ~0.11s
        expected = 10 * 1000 * 8 / 0.11
        assert rec.mean_rate_bps(5, 20) == pytest.approx(expected, rel=0.25)

    def test_no_deadlock_under_heavy_loss(self):
        """Regression: SACK + RTO rewind must never silence the sender."""
        snd, _, rec = lossy_run(sack=True, loss=0.15, duration=60, seed=0)
        # even at 15% loss the connection keeps making progress
        assert snd.snd_una > 100
        late = rec.series(5.0, end=60.0)[-4:]
        assert any(v > 0 for v in late)  # still alive near the end

    def test_stop_cancels_rto(self):
        snd, _, _ = lossy_run(loss=0.05, duration=5)
        snd.stop()
        assert not snd._rto_timer.armed


class TestKarn:
    def test_retransmitted_segments_skip_rtt_sampling(self):
        snd, _, _ = lossy_run(loss=0.05, duration=20)
        assert snd._retransmitted  # some retransmissions happened
        assert snd.rto.srtt is not None  # but RTT kept being estimated
        # sane RTT estimate despite retransmission ambiguity
        assert 0.03 < snd.rto.srtt < 1.0
