"""Unit tests for reliability policies."""

import pytest

from repro.core.profile import ReliabilityMode, TransportProfile
from repro.reliability.policies import (
    CountBoundedReliability,
    FullReliability,
    NoReliability,
    TimeBoundedReliability,
    policy_for,
)
from repro.sack.scoreboard import SentRecord
from repro.sim.packet import AppDataHeader


def record(send_time=0.0, retx=0, deadline=None):
    app = AppDataHeader(app_seq=0, deadline=deadline) if deadline else None
    rec = SentRecord(seq=0, size=1000, send_time=send_time, app=app)
    rec.retx_count = retx
    return rec


class TestPolicies:
    def test_none_never(self):
        assert not NoReliability().should_retransmit(record(), 1.0, 0.1)

    def test_full_always(self):
        rec = record(retx=100)
        assert FullReliability().should_retransmit(rec, 1e6, 10.0)

    def test_time_bounded_respects_explicit_deadline(self):
        policy = TimeBoundedReliability(default_lifetime=0.5)
        rec = record(deadline=2.0)
        assert policy.should_retransmit(rec, 1.5, rtt=0.2)  # 1.6 < 2.0
        assert not policy.should_retransmit(rec, 1.95, rtt=0.2)  # 2.05 > 2.0

    def test_time_bounded_default_lifetime(self):
        policy = TimeBoundedReliability(default_lifetime=1.0)
        rec = record(send_time=0.0)
        assert policy.should_retransmit(rec, 0.5, rtt=0.2)
        assert not policy.should_retransmit(rec, 1.2, rtt=0.2)

    def test_time_bounded_accounts_for_trip_time(self):
        policy = TimeBoundedReliability(default_lifetime=1.0)
        rec = record(send_time=0.0)
        # deadline at 1.0; at t=0.9 a 0.3 s one-way trip misses it
        assert not policy.should_retransmit(rec, 0.9, rtt=0.6)

    def test_count_bounded(self):
        policy = CountBoundedReliability(max_retx=2)
        assert policy.should_retransmit(record(retx=0), 0.0, 0.1)
        assert policy.should_retransmit(record(retx=1), 0.0, 0.1)
        assert not policy.should_retransmit(record(retx=2), 0.0, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeBoundedReliability(0.0)
        with pytest.raises(ValueError):
            CountBoundedReliability(-1)


class TestPolicyFor:
    def make_profile(self, mode, **kw):
        return TransportProfile(reliability=mode, **kw)

    def test_mapping(self):
        assert isinstance(
            policy_for(self.make_profile(ReliabilityMode.NONE)), NoReliability
        )
        assert isinstance(
            policy_for(self.make_profile(ReliabilityMode.FULL)), FullReliability
        )

    def test_partial_time_uses_profile_deadline(self):
        policy = policy_for(
            self.make_profile(ReliabilityMode.PARTIAL_TIME, partial_deadline=2.5)
        )
        assert isinstance(policy, TimeBoundedReliability)
        assert policy.default_lifetime == 2.5

    def test_partial_count_uses_profile_budget(self):
        policy = policy_for(
            self.make_profile(ReliabilityMode.PARTIAL_COUNT, partial_max_retx=7)
        )
        assert isinstance(policy, CountBoundedReliability)
        assert policy.max_retx == 7
