"""Unit tests for RFC 3448 §5 loss-interval machinery."""

import pytest

from repro.metrics.cost import CostMeter
from repro.tfrc.loss_history import (
    NDUPACK,
    RFC3448_WEIGHTS,
    LossEventEstimator,
    LossIntervalHistory,
)


class TestLossIntervalHistory:
    def test_no_events_means_zero_rate(self):
        h = LossIntervalHistory()
        assert h.loss_event_rate() == 0.0
        assert h.average_interval() == 0.0

    def test_single_interval_average(self):
        h = LossIntervalHistory()
        h.record_event(100)
        assert h.average_interval() == pytest.approx(100)
        assert h.loss_event_rate() == pytest.approx(0.01)

    def test_average_of_equal_intervals_stays_within_range(self):
        # regression: the weighted mean of three equal 1.9 intervals
        # rounded to 1.8999999999999997, 1 ULP below min(intervals)
        h = LossIntervalHistory()
        for _ in range(3):
            h.record_event(1.9)
        assert 1.9 <= h.average_interval() <= 1.9

    def test_weights_favour_recent_intervals(self):
        h = LossIntervalHistory()
        for interval in [100] * 8:
            h.record_event(interval)
        baseline = h.average_interval()
        h.record_event(10)  # a recent, much shorter interval
        assert h.average_interval() < baseline

    def test_history_bounded_to_weight_count(self):
        h = LossIntervalHistory()
        for i in range(20):
            h.record_event(i + 1)
        assert len(h) == len(RFC3448_WEIGHTS)

    def test_open_interval_counted_only_if_it_helps(self):
        h = LossIntervalHistory()
        h.record_event(100)
        p_closed = h.loss_event_rate()
        # a short open interval must NOT raise the loss rate
        h.extend_open(5)
        assert h.loss_event_rate() == pytest.approx(p_closed)
        # a long open interval lowers it
        h.open_interval = 1000
        assert h.loss_event_rate() < p_closed

    def test_seed_first_interval(self):
        h = LossIntervalHistory()
        h.record_event(3)
        h.seed_first_interval(250)
        assert h.intervals == [250.0]

    def test_seed_only_valid_right_after_first_event(self):
        h = LossIntervalHistory()
        with pytest.raises(ValueError):
            h.seed_first_interval(10)
        h.record_event(5)
        h.record_event(5)
        with pytest.raises(ValueError):
            h.seed_first_interval(10)

    def test_rejects_negative_interval(self):
        h = LossIntervalHistory()
        with pytest.raises(ValueError):
            h.record_event(-1)

    def test_loss_rate_capped_at_one(self):
        h = LossIntervalHistory()
        h.record_event(0.5)
        assert h.loss_event_rate() == 1.0


class TestLossEventEstimator:
    def feed(self, est, seqs, rtt=0.1, start=0.0, spacing=0.01):
        events = []
        for i, seq in enumerate(seqs):
            events.append(est.on_packet(seq, start + i * spacing, rtt))
        return events

    def test_in_order_stream_has_no_losses(self):
        est = LossEventEstimator()
        self.feed(est, range(100))
        assert est.loss_event_rate() == 0.0
        assert est.confirmed_losses == 0

    def test_gap_confirmed_after_ndupack(self):
        est = LossEventEstimator()
        # 0 1 2 [3 lost] 4 5 -> two higher arrivals: not yet confirmed
        self.feed(est, [0, 1, 2, 4, 5])
        assert est.confirmed_losses == 0
        # 6 is the third packet above the hole: loss confirmed (§5.1)
        est.on_packet(6, 1.0, 0.1)
        assert est.confirmed_losses == 1
        assert est.loss_events == 1

    def test_reordered_packet_is_not_a_loss(self):
        est = LossEventEstimator()
        self.feed(est, [0, 1, 3, 2, 4, 5, 6, 7])
        assert est.confirmed_losses == 0
        assert est.reordered_recoveries == 1

    def test_losses_within_rtt_form_one_event(self):
        est = LossEventEstimator()
        # two losses revealed by arrivals 1 ms apart, rtt = 100 ms
        self.feed(est, [0, 1, 3, 5, 6, 7, 8, 9], spacing=0.001, rtt=0.1)
        assert est.confirmed_losses == 2
        assert est.loss_events == 1

    def test_losses_beyond_rtt_are_separate_events(self):
        est = LossEventEstimator()
        est.on_packet(0, 0.0, 0.01)
        est.on_packet(2, 0.1, 0.01)  # gap at 1 revealed at t=0.1
        est.on_packet(3, 0.2, 0.01)
        est.on_packet(4, 0.3, 0.01)
        est.on_packet(5, 0.4, 0.01)  # loss 1 confirmed
        est.on_packet(7, 1.0, 0.01)  # gap at 6 revealed at t=1.0 (>rtt later)
        est.on_packet(8, 1.1, 0.01)
        est.on_packet(9, 1.2, 0.01)
        est.on_packet(10, 1.3, 0.01)
        assert est.loss_events == 2

    def test_new_event_signalled_for_immediate_feedback(self):
        est = LossEventEstimator()
        # gap at 2; the third higher arrival (5) confirms it
        signals = self.feed(est, [0, 1, 3, 4, 5, 6])
        assert signals == [False, False, False, False, True, False]

    def test_duplicates_ignored(self):
        est = LossEventEstimator()
        self.feed(est, [0, 1, 2, 2, 2])
        assert est.duplicates == 2
        assert est.packets_received == 5

    def test_synthetic_first_interval_used(self):
        est = LossEventEstimator(first_interval_fn=lambda: 500.0)
        self.feed(est, [0, 1, 2, 4, 5, 6, 7])
        assert est.history.intervals == [500.0]

    def test_huge_gap_treated_as_restart(self):
        est = LossEventEstimator(max_gap=100)
        est.on_packet(0, 0.0, 0.1)
        est.on_packet(10_000, 0.1, 0.1)
        assert len(est._pending) == 0  # not 9999 bogus losses

    def test_meter_charged_per_packet(self):
        meter = CostMeter()
        est = LossEventEstimator(meter=meter)
        self.feed(est, range(50))
        assert meter.ops > 0
        assert meter.events > 0

    def test_p_matches_uniform_loss_asymptotically(self):
        # drop every 50th packet; p should approach 1/50
        est = LossEventEstimator()
        t = 0.0
        for seq in range(3000):
            if seq % 50 == 25:
                continue  # lost
            t += 0.002  # 2 ms spacing; rtt 1 ms keeps events separate
            est.on_packet(seq, t, 0.001)
        assert est.loss_event_rate() == pytest.approx(1 / 50, rel=0.25)
