"""Chaos suite for the fault-tolerant sweep fabric (PR 7).

Every resilience guarantee :func:`repro.harness.runner.run_matrix`
makes is exercised here under *deterministic* injected faults
(:mod:`repro.harness.faults`): worker crashes are repaired, hung runs
are reaped by the per-run timeout, corrupted responses are rejected,
retries recover transient faults, surviving records stay byte-identical
to a fault-free run, terminal failures surface as structured
:class:`~repro.harness.result.RunFailure` records through the
:class:`~repro.api.ResultSet`/:class:`~repro.api.Experiment`/CLI
layers, corrupt cache entries are quarantined, and an interrupted
sweep resumes from its journaled manifest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Experiment, ResultSet, RunFailure
from repro.harness.faults import (
    CorruptRecord,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    parse_fault_plan,
    plan_from_env,
)
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.harness.runner import (
    CorruptCacheWarning,
    RunRecord,
    SweepRunError,
    run_matrix,
    shutdown_warm_pool,
    warm_pool_stats,
)


@dataclasses.dataclass
class ChaosProbeResult(ScenarioResult):
    value: float
    doubled: float


@register("chaos_probe", grid={"seed": (0, 1, 2, 3)})
def chaos_probe(
    seed: int = 0, scale: float = 2.0, delay: float = 0.0
) -> ChaosProbeResult:
    """A cheap deterministic scenario for chaos tests (ms per run)."""
    if delay:
        time.sleep(delay)
    value = random.Random(seed).random() * scale
    return ChaosProbeResult(value=value, doubled=value * 2)


GRID = {"seed": (0, 1, 2, 3)}


def result_bytes(records):
    """The byte-identity fingerprint: everything except run metadata."""
    return [
        pickle.dumps((r.scenario, r.params, r.result)) for r in records
    ]


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


# ----------------------------------------------------------------------
# the fault plan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_object_form(self):
        plan = parse_fault_plan(
            '{"seed": 7, "faults": [{"kind": "hang", "rate": 0.5, '
            '"seconds": 3, "scenario": "x", "match": {"seed": 1}}]}'
        )
        assert plan.seed == 7
        (spec,) = plan.faults
        assert spec.kind == "hang" and spec.rate == 0.5
        assert spec.seconds == 3 and spec.match == {"seed": 1}

    def test_parse_bare_list_form(self):
        plan = parse_fault_plan('[{"kind": "raise"}]')
        assert plan.seed == 0 and plan.faults[0].kind == "raise"

    @pytest.mark.parametrize(
        "text",
        [
            "not json",
            '"a string"',
            '{"sed": 1}',  # typo'd top-level key
            '{"faults": [{"kind": "raise", "rte": 0.5}]}',  # typo'd rule key
            '{"faults": [{"kind": "frobnicate"}]}',  # unknown kind
            '{"faults": [{"kind": "raise", "rate": 1.5}]}',  # bad rate
            '{"faults": ["raise"]}',  # rule is not an object
        ],
    )
    def test_bad_plans_rejected(self, text):
        with pytest.raises(ValueError):
            parse_fault_plan(text)

    def test_env_hook(self, monkeypatch):
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", '[{"kind": "exit"}]')
        plan = plan_from_env()
        assert plan.faults[0].kind == "exit"

    def test_decide_is_deterministic_and_rate_bounded(self):
        plan = FaultPlan(
            seed=3, faults=(FaultSpec(kind="raise", rate=0.3, times=None),)
        )
        cells = [{"seed": s} for s in range(200)]
        first = [plan.decide("s", c, 1) is not None for c in cells]
        second = [plan.decide("s", c, 1) is not None for c in cells]
        assert first == second  # pure function of (plan, cell, attempt)
        hit_rate = sum(first) / len(first)
        assert 0.15 < hit_rate < 0.45  # ~rate, not 0%/100%
        # a different plan seed selects different cells
        other = FaultPlan(
            seed=4, faults=(FaultSpec(kind="raise", rate=0.3, times=None),)
        )
        assert first != [
            other.decide("s", c, 1) is not None for c in cells
        ]

    def test_times_window_limits_attempts(self):
        plan = FaultPlan(faults=(FaultSpec(kind="raise", times=2),))
        assert plan.decide("s", {"seed": 0}, 1) is not None
        assert plan.decide("s", {"seed": 0}, 2) is not None
        assert plan.decide("s", {"seed": 0}, 3) is None

    def test_match_and_scenario_select_cells(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", scenario="a", match={"seed": 1}),
        ))
        assert plan.decide("a", {"seed": 1}, 1) is not None
        assert plan.decide("a", {"seed": 2}, 1) is None
        assert plan.decide("b", {"seed": 1}, 1) is None

    def test_apply_raise_and_corrupt(self):
        plan = FaultPlan(faults=(FaultSpec(kind="raise"),))
        with pytest.raises(InjectedFault):
            plan.apply("s", {"seed": 0}, 1)
        corrupt = FaultPlan(faults=(FaultSpec(kind="corrupt"),)).apply(
            "s", {"seed": 0}, 1
        )
        assert isinstance(corrupt, CorruptRecord)
        assert not isinstance(corrupt, RunRecord)

    def test_plan_travels_with_tasks_not_env(self, monkeypatch):
        # the env hook is read in the parent at call time; workers never
        # consult their (stale, forked) environment.  An explicit plan
        # must win over the variable outright.
        monkeypatch.setenv(
            "REPRO_FAULTS", '[{"kind": "raise", "times": null}]'
        )
        records = run_matrix(
            "chaos_probe", GRID, workers=2, strict=False,
            faults=FaultPlan(),  # explicit empty plan: no faults
        )
        assert all(r.ok for r in records)


# ----------------------------------------------------------------------
# retry/failure semantics, serial path
# ----------------------------------------------------------------------
class TestSerialFaults:
    def test_retry_recovers_transient_fault(self):
        plan = FaultPlan(faults=(FaultSpec(kind="raise", times=2),))
        reference = run_matrix("chaos_probe", GRID, workers=1)
        records = run_matrix(
            "chaos_probe", GRID, workers=1, max_retries=2, faults=plan
        )
        assert result_bytes(records) == result_bytes(reference)
        assert [r.attempts for r in records] == [3, 3, 3, 3]

    def test_strict_raises_original_exception(self):
        plan = FaultPlan(faults=(FaultSpec(kind="raise", times=None),))
        with pytest.raises(InjectedFault):
            run_matrix("chaos_probe", GRID, workers=1, faults=plan)

    def test_default_no_retry_is_seed_behaviour(self):
        plan = FaultPlan(faults=(FaultSpec(kind="raise", times=1),))
        with pytest.raises(InjectedFault):
            run_matrix("chaos_probe", GRID, workers=1, faults=plan)

    def test_terminal_failure_record(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", match={"seed": 2}, times=None),
        ))
        records = run_matrix(
            "chaos_probe", GRID, workers=1, max_retries=1,
            strict=False, faults=plan,
        )
        assert [r.ok for r in records] == [True, True, False, True]
        failure = records[2].result
        assert isinstance(failure, RunFailure)
        assert failure.failure_kind == "error"
        assert failure.error == "InjectedFault"
        assert failure.attempts == 2
        assert "InjectedFault" in failure.traceback

    def test_corrupt_record_rejected(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="corrupt", match={"seed": 0}, times=None),
        ))
        records = run_matrix(
            "chaos_probe", GRID, workers=1, strict=False, faults=plan
        )
        failure = records[0].result
        assert isinstance(failure, RunFailure)
        assert failure.failure_kind == "invalid"
        assert all(r.ok for r in records[1:])

    def test_failures_are_never_cached(self, tmp_path):
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", match={"seed": 1}, times=None),
        ))
        cache = tmp_path / "memo"
        first = run_matrix(
            "chaos_probe", GRID, workers=1, cache_dir=cache,
            strict=False, faults=plan,
        )
        assert not first[1].ok
        # the failed cell re-runs (fault-free now) instead of replaying
        second = run_matrix(
            "chaos_probe", GRID, workers=1, cache_dir=cache
        )
        assert all(r.ok for r in second)
        assert [r.cached for r in second] == [True, False, True, True]

    def test_argument_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            run_matrix("chaos_probe", GRID, max_retries=-1)
        with pytest.raises(ValueError, match="run_timeout"):
            run_matrix("chaos_probe", GRID, run_timeout=0.0)


# ----------------------------------------------------------------------
# the pool under chaos: crashes, hangs, timeouts, repair
# ----------------------------------------------------------------------
class TestPoolChaos:
    def test_acceptance_crash_and_hang_plan(self):
        # the ISSUE acceptance plan: ~20% worker crashes plus hangs on
        # the first attempt; the sweep must complete the full grid via
        # retries with surviving records byte-identical to fault-free.
        shutdown_warm_pool()
        grid = {"seed": tuple(range(10))}
        reference = run_matrix("chaos_probe", grid, workers=2)
        plan = FaultPlan(seed=1, faults=(
            FaultSpec(kind="exit", rate=0.2, times=1),
            FaultSpec(kind="hang", rate=0.2, times=1, seconds=30.0),
        ))
        before = warm_pool_stats()
        records = run_matrix(
            "chaos_probe", grid, workers=2, max_retries=3,
            run_timeout=5.0, strict=False, faults=plan,
        )
        after = warm_pool_stats()
        assert all(r.ok for r in records)  # zero terminal failures
        assert result_bytes(records) == result_bytes(reference)
        # the plan actually fired: retries happened and workers died
        assert any(r.attempts > 1 for r in records)
        assert after["repaired"] > before["repaired"]
        # the reference run's pool served the chaos run too: repaired
        # in place, never discarded and recreated
        assert after["created"] == before["created"]
        assert after["reused"] == before["reused"] + 1

    def test_worker_crash_is_terminal_after_retries(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="exit", match={"seed": 1}, times=None),
        ))
        records = run_matrix(
            "chaos_probe", GRID, workers=2, max_retries=1,
            strict=False, faults=plan,
        )
        failure = records[1].result
        assert isinstance(failure, RunFailure)
        assert failure.failure_kind == "crash"
        assert failure.attempts == 2
        assert all(r.ok for i, r in enumerate(records) if i != 1)

    def test_hung_run_reaped_by_timeout(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="hang", match={"seed": 0}, times=None,
                      seconds=60.0),
        ))
        started = time.monotonic()
        records = run_matrix(
            "chaos_probe", GRID, workers=2, run_timeout=1.0,
            strict=False, faults=plan,
        )
        assert time.monotonic() - started < 30.0  # reaped, not 60s
        failure = records[0].result
        assert isinstance(failure, RunFailure)
        assert failure.failure_kind == "timeout"
        assert all(r.ok for r in records[1:])

    def test_run_timeout_forces_pool_for_single_worker(self):
        # an in-process run cannot preempt itself: with a timeout set,
        # even workers=1 must execute through killable workers
        plan = FaultPlan(faults=(
            FaultSpec(kind="hang", match={"seed": 2}, times=1,
                      seconds=60.0),
        ))
        records = run_matrix(
            "chaos_probe", GRID, workers=1, run_timeout=1.0,
            max_retries=1, strict=False, faults=plan,
        )
        assert all(r.ok for r in records)
        assert records[2].attempts == 2
        assert records[2].worker_pid != os.getpid()

    def test_corrupt_response_rejected_by_pool(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="corrupt", match={"seed": 3}, times=1),
        ))
        reference = run_matrix("chaos_probe", GRID, workers=2)
        records = run_matrix(
            "chaos_probe", GRID, workers=2, max_retries=1,
            strict=False, faults=plan,
        )
        assert all(r.ok for r in records)
        assert records[3].attempts == 2
        assert result_bytes(records) == result_bytes(reference)

    def test_strict_pool_raises_original_exception(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", match={"seed": 1}, times=None),
        ))
        with pytest.raises(InjectedFault):
            run_matrix("chaos_probe", GRID, workers=2, faults=plan)
        # the pool survives the strict abort for the next sweep
        records = run_matrix("chaos_probe", GRID, workers=2)
        assert all(r.ok for r in records)

    def test_strict_crash_raises_sweep_run_error(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="exit", match={"seed": 0}, times=None),
        ))
        with pytest.raises(SweepRunError, match="crash"):
            run_matrix("chaos_probe", GRID, workers=2, faults=plan)


# ----------------------------------------------------------------------
# partial results through ResultSet / Experiment
# ----------------------------------------------------------------------
def _partial_resultset() -> ResultSet:
    """Four chaos_probe cells with seed=2 failed terminally."""
    plan = FaultPlan(faults=(
        FaultSpec(kind="raise", match={"seed": 2}, times=None),
    ))
    return ResultSet(
        run_matrix(
            "chaos_probe", GRID, workers=1, strict=False, faults=plan
        )
    )


class TestPartialResults:
    def test_ok_failures_coverage(self):
        rs = _partial_resultset()
        assert len(rs) == 4 and rs.has_failures
        assert len(rs.ok()) == 3 and len(rs.failures()) == 1
        assert rs.coverage() == pytest.approx(0.75)
        assert "1 failed" in repr(rs)
        # failure metrics are queryable on the failures() set
        assert len(rs.failures().filter(failure_kind="error")) == 1

    def test_status_column_only_when_failures_present(self):
        rs = _partial_resultset()
        headers, rows = rs.to_rows()
        assert headers == ["seed", "status", "value", "doubled"]
        assert [row[1] for row in rows] == [
            "ok", "ok", "failed:error", "ok",
        ]
        assert rows[2][2] == ""  # failed cell's metrics are blank
        # a fully successful set renders byte-identically to before
        ok_headers, ok_rows = rs.ok().to_rows()
        assert ok_headers == ["seed", "value", "doubled"]
        assert all(len(row) == 3 for row in ok_rows)
        assert "status" in rs.table() and "status" not in rs.ok().table()

    def test_metric_names_come_from_ok_records(self):
        rs = _partial_resultset()
        assert rs.metric_names == ["value", "doubled"]
        # a pure-failure set exposes the failure schema instead
        assert "failure_kind" in rs.failures().metric_names

    def test_aggregate_skips_failures_and_reports_them(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", match={"seed": 2}, times=None),
        ))
        records = run_matrix(
            "chaos_probe", {"scale": (2.0, 4.0)}, seeds=(0, 1, 2),
            workers=1, strict=False, faults=plan,
        )
        agg = ResultSet(records).aggregate("value", over="seed")
        by_scale = {r.params["scale"]: r.result for r in agg}
        assert by_scale[2.0]["runs"] == 2 and by_scale[2.0]["failed"] == 1
        assert by_scale[4.0]["runs"] == 2 and by_scale[4.0]["failed"] == 1
        # the mean folds only the surviving seeds (0 and 1)
        expected = sum(
            random.Random(s).random() * 2.0 for s in (0, 1)
        ) / 2
        assert by_scale[2.0]["value_mean"] == pytest.approx(expected)

    def test_aggregate_without_failures_has_no_failed_column(self):
        records = run_matrix("chaos_probe", GRID, workers=1)
        agg = ResultSet(records).aggregate("value", over="seed")
        assert "failed" not in agg[0].result.metrics()

    def test_to_json_reports_failures(self):
        rs = _partial_resultset()
        payload = json.loads(rs.to_json())
        assert "metrics" in payload[0] and "failure" not in payload[0]
        assert "failure" in payload[2] and "metrics" not in payload[2]
        assert payload[2]["failure"]["kind"] == "error"
        assert payload[2]["failure"]["error"] == "InjectedFault"
        assert payload[2]["failure"]["attempts"] == 1

    def test_experiment_on_failure_raise_keep_retry(self, monkeypatch):
        plan_json = json.dumps(
            [{"kind": "raise", "match": {"seed": 1}, "times": 2}]
        )
        monkeypatch.setenv("REPRO_FAULTS", plan_json)
        exp = Experiment("chaos_probe").sweep(seed=(0, 1))
        with pytest.raises(InjectedFault):
            exp.run()  # default on_failure="raise"
        rs = exp.run(on_failure="keep")  # no retries: cell 1 fails
        assert [r.ok for r in rs] == [True, False]
        rs = exp.run(on_failure="retry")  # default 2 retries: recovers
        assert [r.ok for r in rs] == [True, True]
        assert rs[1].attempts == 3
        with pytest.raises(ValueError, match="on_failure"):
            exp.run(on_failure="ignore")

    def test_experiment_builder_validation(self):
        exp = Experiment("chaos_probe")
        with pytest.raises(ValueError):
            exp.retries(-1)
        with pytest.raises(ValueError):
            exp.timeout(0)
        assert exp.retries(2)._max_retries == 2
        assert exp.timeout(1.5)._run_timeout == 1.5
        assert exp.timeout(None)._run_timeout is None


# ----------------------------------------------------------------------
# cache quarantine
# ----------------------------------------------------------------------
class TestCacheQuarantine:
    def test_pickle_entry_quarantined(self, tmp_path, monkeypatch):
        from repro.harness import runner as runner_mod

        cache = tmp_path / "memo"
        run_matrix("chaos_probe", GRID, workers=1, cache_dir=cache)
        victim = next(cache.glob("chaos_probe-*.pkl"))
        victim.write_bytes(b"\x80garbage-not-a-pickle")
        monkeypatch.setattr(runner_mod, "_QUARANTINE_WARNED", False)
        with pytest.warns(CorruptCacheWarning):
            records = run_matrix(
                "chaos_probe", GRID, workers=1, cache_dir=cache
            )
        assert all(r.ok for r in records)
        assert sum(1 for r in records if not r.cached) == 1  # recomputed
        corpses = list(cache.glob("*.pkl.corrupt"))
        assert len(corpses) == 1
        assert corpses[0].read_bytes() == b"\x80garbage-not-a-pickle"
        # the recompute repopulated the slot; a third sweep is all-cached
        third = run_matrix("chaos_probe", GRID, workers=1, cache_dir=cache)
        assert all(r.cached for r in third)

    def test_pickle_foreign_object_quarantined(self, tmp_path, monkeypatch):
        from repro.harness import runner as runner_mod

        cache = tmp_path / "memo"
        run_matrix("chaos_probe", GRID, workers=1, cache_dir=cache)
        victim = next(cache.glob("chaos_probe-*.pkl"))
        victim.write_bytes(pickle.dumps({"not": "a RunRecord"}))
        monkeypatch.setattr(runner_mod, "_QUARANTINE_WARNED", False)
        with pytest.warns(CorruptCacheWarning):
            records = run_matrix(
                "chaos_probe", GRID, workers=1, cache_dir=cache
            )
        assert all(r.ok for r in records)
        assert list(cache.glob("*.pkl.corrupt"))

    def test_sqlite_row_quarantined(self, tmp_path, monkeypatch):
        import sqlite3

        from repro.harness import runner as runner_mod

        db = tmp_path / "results.db"
        monkeypatch.setenv("REPRO_CACHE", f"sqlite:{db}")
        run_matrix("chaos_probe", GRID, workers=1, cache_dir=tmp_path)
        with sqlite3.connect(db) as conn:
            key = conn.execute("SELECT key FROM results LIMIT 1").fetchone()[0]
            conn.execute(
                "UPDATE results SET payload = ? WHERE key = ?",
                (b"\x00truncated", key),
            )
        monkeypatch.setattr(runner_mod, "_QUARANTINE_WARNED", False)
        with pytest.warns(CorruptCacheWarning):
            records = run_matrix(
                "chaos_probe", GRID, workers=1, cache_dir=tmp_path
            )
        assert all(r.ok for r in records)
        assert sum(1 for r in records if not r.cached) == 1
        with sqlite3.connect(db) as conn:
            quarantined = conn.execute(
                "SELECT key, payload FROM quarantine"
            ).fetchall()
            assert quarantined == [(key, b"\x00truncated")]
            # the corrupt row is gone from the live table (replaced by
            # the recompute's fresh store)
            fresh = conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            assert fresh is not None and fresh[0] != b"\x00truncated"

    def test_quarantine_warns_once_per_process(self, tmp_path, monkeypatch):
        import warnings as warnings_mod

        from repro.harness import runner as runner_mod

        cache = tmp_path / "memo"
        run_matrix("chaos_probe", GRID, workers=1, cache_dir=cache)
        for victim in cache.glob("chaos_probe-*.pkl"):
            victim.write_bytes(b"junk")
        monkeypatch.setattr(runner_mod, "_QUARANTINE_WARNED", False)
        with warnings_mod.catch_warnings(record=True) as caught:
            warnings_mod.simplefilter("always")
            run_matrix("chaos_probe", GRID, workers=1, cache_dir=cache)
        ours = [w for w in caught if w.category is CorruptCacheWarning]
        assert len(ours) == 1  # four corrupt entries, one warning


# ----------------------------------------------------------------------
# manifest + resume
# ----------------------------------------------------------------------
class TestManifestResume:
    def test_partial_failure_then_resume_completes(self, tmp_path):
        cache = tmp_path / "memo"
        reference = run_matrix("chaos_probe", GRID, workers=1)
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", match={"seed": 2}, times=None),
        ))
        first = run_matrix(
            "chaos_probe", GRID, workers=1, cache_dir=cache,
            strict=False, faults=plan,
        )
        assert [r.ok for r in first] == [True, True, False, True]
        (manifest_path,) = cache.glob("*.manifest.jsonl")
        lines = [
            json.loads(line)
            for line in manifest_path.read_text().splitlines()
        ]
        assert lines[0]["scenario"] == "chaos_probe"
        assert lines[0]["cells"] == 4
        statuses = {e["i"]: e["status"] for e in lines[1:]}
        assert statuses == {0: "ok", 1: "ok", 2: "failed", 3: "ok"}
        # resume: only the failed cell re-runs, the rest replay from memo
        resumed = run_matrix(
            "chaos_probe", GRID, workers=1, cache_dir=cache, resume=True
        )
        assert all(r.ok for r in resumed)
        assert [r.cached for r in resumed] == [True, True, False, True]
        assert result_bytes(resumed) == result_bytes(reference)

    def test_resume_grid_mismatch_is_an_error(self, tmp_path):
        cache = tmp_path / "memo"
        run_matrix("chaos_probe", GRID, workers=1, cache_dir=cache)
        with pytest.raises(ValueError, match="cannot resume"):
            run_matrix(
                "chaos_probe", {"seed": (0, 1)}, workers=1,
                cache_dir=cache, resume=True,
            )

    def test_resume_without_cache_is_an_error(self):
        with pytest.raises(ValueError, match="resume"):
            run_matrix("chaos_probe", GRID, resume=True)

    def test_keyboard_interrupt_mid_sweep_is_resumable(self, tmp_path):
        shutdown_warm_pool()
        cache = tmp_path / "memo"
        grid = {"seed": tuple(range(8))}
        reference = run_matrix("chaos_probe", grid, workers=2,
                               cache_dir=cache)
        for stale in cache.iterdir():  # fresh cache for the real test
            stale.unlink()
        seen = []

        def interrupt_after_three(record):
            seen.append(record)
            if len(seen) == 3:
                raise KeyboardInterrupt

        before = warm_pool_stats()
        with pytest.raises(KeyboardInterrupt):
            run_matrix(
                "chaos_probe", grid, workers=2, cache_dir=cache,
                progress=interrupt_after_three,
            )
        # the manifest journaled what completed before the interrupt
        (manifest_path,) = cache.glob("*.manifest.jsonl")
        entries = [
            json.loads(line)
            for line in manifest_path.read_text().splitlines()
        ][1:]
        assert len(entries) >= 3
        assert all(e["status"] == "ok" for e in entries)
        # the pool survived the interrupt (repaired, not discarded)
        resumed = run_matrix(
            "chaos_probe", grid, workers=2, cache_dir=cache, resume=True
        )
        after = warm_pool_stats()
        assert after["created"] == before["created"]  # same pool, reused
        assert all(r.ok for r in resumed)
        assert sum(1 for r in resumed if r.cached) >= 3
        assert result_bytes(resumed) == result_bytes(reference)

    def test_sigterm_mid_sweep_is_resumable(self, tmp_path):
        # a real SIGTERM against a separate sweep process: the runner
        # converts it to a clean shutdown, the manifest survives, and a
        # --resume invocation completes only the remaining cells
        script = tmp_path / "sweep_script.py"
        script.write_text(SIGTERM_SCRIPT)
        cache = tmp_path / "memo"
        env = {**os.environ,
               "PYTHONPATH": str(Path("src").resolve()),
               "PYTHONUNBUFFERED": "1"}
        proc = subprocess.Popen(
            [sys.executable, str(script), str(cache), "first"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # wait until the fast cells have been journaled
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                manifests = list(cache.glob("*.manifest.jsonl"))
                if manifests and len(
                    manifests[0].read_text().splitlines()
                ) >= 3:  # header + 2 fast cells
                    break
                time.sleep(0.1)
            else:
                pytest.fail("sweep never journaled its fast cells")
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert "INTERRUPTED" in out, out
        (manifest_path,) = cache.glob("*.manifest.jsonl")
        statuses = [
            json.loads(line)
            for line in manifest_path.read_text().splitlines()
        ][1:]
        done = {e["i"] for e in statuses if e["status"] == "ok"}
        assert {0, 1} <= done and len(done) < 4
        # second invocation: resume completes only the remaining cells
        out2 = subprocess.run(
            [sys.executable, str(script), str(cache), "resume"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, timeout=120, check=True,
        ).stdout
        payload = json.loads(out2.splitlines()[-1])
        assert payload["ok"] == 4
        assert payload["cached"] >= len(done)
        assert payload["values"] == sorted(
            random.Random(s).random() for s in range(4)
        )

    def test_sigkill_mid_sweep_leaves_valid_manifest_and_resumes(
            self, tmp_path):
        # SIGKILL gives the runner NO chance to clean up: whatever the
        # manifest holds is whatever was flushed+fsync'd per entry.  It
        # must still parse (torn final line at worst) and --resume must
        # complete the sweep with byte-identical values.
        script = tmp_path / "sweep_script.py"
        script.write_text(SIGTERM_SCRIPT)
        cache = tmp_path / "memo"
        env = {**os.environ,
               "PYTHONPATH": str(Path("src").resolve()),
               "PYTHONUNBUFFERED": "1"}
        # the first invocation's output is irrelevant and capturing it
        # would leave orphaned workers holding the pipe open
        proc = subprocess.Popen(
            [sys.executable, str(script), str(cache), "first"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                manifests = list(cache.glob("*.manifest.jsonl"))
                if manifests and len(
                    manifests[0].read_text().splitlines()
                ) >= 3:  # header + 2 fast cells journaled
                    break
                time.sleep(0.1)
            else:
                pytest.fail("sweep never journaled its fast cells")
            proc.kill()  # SIGKILL, not SIGTERM: no handler runs
            proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == -signal.SIGKILL
        # every durable manifest line parses; the completed cells are ok
        (manifest_path,) = cache.glob("*.manifest.jsonl")
        lines = manifest_path.read_text().splitlines()
        entries = []
        for line in lines[1:]:
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                assert line is lines[-1]  # only the final line may tear
        done = {e["i"] for e in entries if e.get("status") == "ok"}
        assert {0, 1} <= done and len(done) < 4
        # resume completes only the remaining cells, byte-identically
        out = subprocess.run(
            [sys.executable, str(script), str(cache), "resume"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, timeout=120, check=True,
        ).stdout
        payload = json.loads(out.splitlines()[-1])
        assert payload["ok"] == 4
        assert payload["cached"] >= len(done)
        assert payload["values"] == sorted(
            random.Random(s).random() for s in range(4)
        )


SIGTERM_SCRIPT = '''
import dataclasses, json, os, sys, time, random
from repro.harness.registry import register
from repro.harness.result import ScenarioResult
from repro.harness.runner import run_matrix

@dataclasses.dataclass
class R(ScenarioResult):
    value: float

@register("sigterm_probe", grid={})
def sigterm_probe(seed: int = 0) -> R:
    # the slow cells hang only in the first invocation (env flag, NOT a
    # parameter: the cache key must be identical across invocations)
    if os.environ.get("SIGTERM_PROBE_HANG") and seed >= 2:
        time.sleep(120.0)  # hangs until SIGTERM reaps the sweep
    return R(value=random.Random(seed).random())

cache, mode = sys.argv[1], sys.argv[2]
if mode == "first":
    os.environ["SIGTERM_PROBE_HANG"] = "1"  # before workers fork
try:
    records = run_matrix(
        "sigterm_probe", {"seed": (0, 1, 2, 3)},
        workers=2, cache_dir=cache, resume=(mode == "resume"),
    )
except KeyboardInterrupt:
    print("INTERRUPTED", flush=True)
    sys.exit(3)
print(json.dumps({
    "ok": sum(1 for r in records if r.ok),
    "cached": sum(1 for r in records if r.cached),
    "values": sorted(r.result.value for r in records),
}), flush=True)
'''


# ----------------------------------------------------------------------
# CLI surfacing
# ----------------------------------------------------------------------
class TestCli:
    def _run_cli(self, tmp_path, *extra, faults=None, monkeypatch=None):
        from repro.harness.cli import main

        if faults is not None:
            monkeypatch.setenv("REPRO_FAULTS", faults)
        argv = [
            "run", "chaos_probe", "--sweep", "seed=0,1,2,3",
            "--cache-dir", str(tmp_path / "memo"), "--quiet",
            *extra,
        ]
        return main(argv)

    def test_failure_footer_and_exit_code(self, tmp_path, capsys,
                                          monkeypatch):
        plan = json.dumps(
            [{"kind": "raise", "match": {"seed": 2}, "times": None}]
        )
        code = self._run_cli(
            tmp_path, faults=plan, monkeypatch=monkeypatch
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "1 of 4 runs failed terminally" in captured.err
        assert "coverage 75%" in captured.err
        assert "--resume" in captured.err
        assert "failed:error" in captured.out  # status column in table

    def test_resume_flag_completes_failed_cells(self, tmp_path, capsys,
                                                monkeypatch):
        plan = json.dumps(
            [{"kind": "raise", "match": {"seed": 2}, "times": None}]
        )
        assert self._run_cli(
            tmp_path, faults=plan, monkeypatch=monkeypatch
        ) == 1
        capsys.readouterr()
        monkeypatch.delenv("REPRO_FAULTS")
        code = self._run_cli(tmp_path, "--resume")
        captured = capsys.readouterr()
        assert code == 0
        assert "failed" not in captured.err
        assert "status" not in captured.out  # clean table again
        assert "3 cached" in captured.out

    def test_max_retries_flag_recovers(self, tmp_path, capsys, monkeypatch):
        plan = json.dumps([{"kind": "raise", "match": {"seed": 1}}])
        code = self._run_cli(
            tmp_path, "--max-retries", "2",
            faults=plan, monkeypatch=monkeypatch,
        )
        assert code == 0
        assert "status" not in capsys.readouterr().out

    def test_strict_flag_restores_abort(self, tmp_path, monkeypatch):
        plan = json.dumps(
            [{"kind": "raise", "match": {"seed": 0}, "times": None}]
        )
        monkeypatch.setenv("REPRO_FAULTS", plan)
        from repro.harness.cli import main

        with pytest.raises(InjectedFault):
            main([
                "run", "chaos_probe", "--sweep", "seed=0,1",
                "--no-cache", "--quiet", "--strict",
            ])

    def test_resume_requires_cache(self, tmp_path, capsys):
        from repro.harness.cli import main

        code = main([
            "run", "chaos_probe", "--sweep", "seed=0",
            "--no-cache", "--resume", "--quiet",
        ])
        assert code == 2
        assert "--resume needs the memo cache" in capsys.readouterr().err

    def test_json_stdout_stays_pure_data_on_failure(self, tmp_path,
                                                    capsys, monkeypatch):
        plan = json.dumps(
            [{"kind": "raise", "match": {"seed": 3}, "times": None}]
        )
        code = self._run_cli(
            tmp_path, "--format", "json",
            faults=plan, monkeypatch=monkeypatch,
        )
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)  # parseable despite failures
        assert payload[3]["failure"]["kind"] == "error"
        assert "failed terminally" in captured.err


# ----------------------------------------------------------------------
# the <5% fault-plumbing overhead guard (slow tier)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFaultOverhead:
    def test_fault_free_overhead_under_five_percent(self):
        from repro.harness.bench import (
            _bench_sweep_fault_overhead,
            _bench_sweep_warm,
        )

        shutdown_warm_pool()
        _bench_sweep_warm()  # pay the pool spawn outside the timings
        def best_of(fn, n=5):
            best = float("inf")
            for _ in range(n):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        plain = best_of(_bench_sweep_warm)
        armed = best_of(_bench_sweep_fault_overhead)
        overhead = armed / plain - 1.0
        assert overhead < 0.05, (
            f"fault-tolerance plumbing costs {overhead:.1%} on the "
            f"fault-free warm sweep (plain {plain:.3f}s, armed {armed:.3f}s)"
        )
