"""Determinism goldens: the engine reproduces the seed engine exactly.

``benchmarks/goldens/core_goldens.json`` holds fingerprints captured
from the *seed* engine (pre-PR 2): exact event-sequence digests for
raw-engine churn and ``(events_processed, final sim.now, per-flow
delivered bytes)`` for miniature network runs.  These tests prove that

* identical ``(seed, scenario)`` still produces identical results after
  the hot-path overhaul (tuple-backed heap, slotted packets, interval
  loss tracking, prefix-sum recorders), and
* two runs in one process are identical (no hidden global state).

They run in tier-1: each probe is a few hundred milliseconds.  The full
probe grid (more seeds/protocols) runs in the slow tier
(``benchmarks/test_p1_core_speed.py``).
"""

import json
from pathlib import Path

import pytest

from repro.harness.bench import (
    FLUID_PROBE_SCENARIOS,
    TOPO_PROBE_SCENARIOS,
    TRAFFIC_PROBE_SCENARIOS,
    engine_trace_probe,
    fluid_trace_probe,
    network_trace_probe,
    topo_trace_probe,
    traffic_trace_probe,
)

GOLDENS_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "goldens"
    / "core_goldens.json"
)


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDENS_PATH.read_text())


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_engine_trace_matches_seed_engine(goldens, seed):
    assert engine_trace_probe(seed=seed) == goldens["engine"][str(seed)]


def test_network_trace_matches_seed_engine(goldens):
    # one representative protocol in tier-1; the full grid is slow-tier
    assert network_trace_probe(seed=0, protocol="qtpaf") == (
        goldens["network"]["qtpaf:0"]
    )


def test_engine_probe_is_repeatable():
    assert engine_trace_probe(seed=5) == engine_trace_probe(seed=5)


def test_engine_probe_varies_with_seed():
    assert engine_trace_probe(seed=0) != engine_trace_probe(seed=1)


def test_network_probe_is_repeatable():
    a = network_trace_probe(seed=3, protocol="tfrc", duration=2.0)
    b = network_trace_probe(seed=3, protocol="tfrc", duration=2.0)
    assert a == b


@pytest.mark.parametrize("scenario", TOPO_PROBE_SCENARIOS)
def test_topo_scenario_trace_matches_golden(goldens, scenario):
    # pins the PR 3 spec-built scenarios (parking lot, reverse-path
    # chain, heterogeneous SLAs) so later PRs can refactor the specs
    # and the compiler safely
    assert topo_trace_probe(scenario) == goldens["topo"][scenario]


def test_topo_probe_is_repeatable():
    a = topo_trace_probe("parking_lot", seed=2, duration=2.0)
    b = topo_trace_probe("parking_lot", seed=2, duration=2.0)
    assert a == b


@pytest.mark.parametrize("scenario", TRAFFIC_PROBE_SCENARIOS)
def test_traffic_scenario_trace_matches_golden(goldens, scenario):
    # pins the PR 6 generated-population pipeline end to end: arrival
    # samplers, class mix, endpoint draws, apply_slas and the
    # byte-budget flow lifecycle (flow/completed counts + exact FCT sum)
    assert traffic_trace_probe(scenario) == goldens["traffic"][scenario]


def test_traffic_probe_is_repeatable():
    a = traffic_trace_probe("mice_elephants", seed=4, duration=3.0)
    b = traffic_trace_probe("mice_elephants", seed=4, duration=3.0)
    assert a == b


@pytest.mark.parametrize("scenario", FLUID_PROBE_SCENARIOS)
def test_fluid_scenario_trace_matches_golden(goldens, scenario):
    # pins the PR 10 hybrid-fidelity pipeline end to end: hybridize's
    # foreground/background split, the fluid epoch model (admission
    # curve, elastic retry, service-share modulation) and the MMPP
    # one-draw-per-epoch RNG-stream discipline
    assert fluid_trace_probe(scenario) == goldens["fluid"][scenario]


def test_fluid_probe_is_repeatable():
    a = fluid_trace_probe("hybrid_flash_crowd", seed=3, duration=3.0)
    b = fluid_trace_probe("hybrid_flash_crowd", seed=3, duration=3.0)
    assert a == b


def test_fluid_disabled_matches_foreground_only_run(monkeypatch):
    # REPRO_NO_FLUID=1 must compile the hybrid spec with zero fluid
    # machinery: same events, same counters as never declaring a
    # background (the kill-switch contract, mirroring REPRO_NO_POOL)
    from repro.topo.build import NO_FLUID_ENV

    monkeypatch.setenv(NO_FLUID_ENV, "1")
    disabled = fluid_trace_probe("mmpp_dumbbell", seed=1, duration=2.0)
    monkeypatch.delenv(NO_FLUID_ENV)
    enabled = fluid_trace_probe("mmpp_dumbbell", seed=1, duration=2.0)
    assert disabled["background"]["sources"] == 0
    assert enabled["background"]["sources"] == 1
    assert disabled != enabled
