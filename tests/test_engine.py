"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator, Timer


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_run_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.5, order.append, "inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert order == ["outer", "inner"]
        assert sim.now == 1.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # advanced to the horizon
        sim.run()
        assert fired == [1, 5]

    def test_run_returns_processed_count(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(float(i), lambda: None)
        assert sim.run() == 7

    def test_max_events_limit(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.cancel(ev)
        sim.cancel(None)  # tolerated
        assert sim.run() == 0

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1
        assert keep.time == 1.0

    def test_pending_counter_tracks_heap_scan(self):
        # the O(1) counter must agree with a naive heap scan through
        # schedule / cancel / run / step churn
        sim = Simulator(seed=7)
        rng = sim.rng("churn")
        events = []

        def naive():
            # heap entries are (time, seq, event) tuples (engine fast path)
            return sum(
                1 for _, _, ev in sim._heap if not ev.cancelled and not ev._popped
            )

        for i in range(200):
            events.append(sim.schedule(rng.uniform(0, 10), lambda: None))
            if rng.random() < 0.4:
                rng.choice(events).cancel()
            assert sim.pending == naive()
        sim.run(until=5.0)
        assert sim.pending == naive()
        while sim.step():
            assert sim.pending == naive()
        assert sim.pending == 0

    def test_pending_unchanged_by_cancel_after_fire(self):
        sim = Simulator()
        fired = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        assert sim.pending == 1
        fired.cancel()  # firing already consumed the event
        fired.cancel()
        assert sim.pending == 1

    def test_pending_counts_double_cancel_once(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending == 1


class TestRandomStreams:
    def test_streams_are_deterministic_per_seed(self):
        a = Simulator(seed=42).rng("x").random()
        b = Simulator(seed=42).rng("x").random()
        assert a == b

    def test_streams_differ_by_name(self):
        sim = Simulator(seed=42)
        assert sim.rng("x").random() != sim.rng("y").random()

    def test_streams_differ_by_seed(self):
        a = Simulator(seed=1).rng("x").random()
        b = Simulator(seed=2).rng("x").random()
        assert a != b

    def test_same_name_returns_same_stream(self):
        sim = Simulator()
        assert sim.rng("x") is sim.rng("x")


class TestTimer:
    def test_timer_fires_after_delay(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.restart(2.0)
        sim.run()
        assert fired == [2.0]

    def test_restart_supersedes_previous_shot(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.restart(1.0)
        t.restart(3.0)
        sim.run()
        assert fired == [3.0]

    def test_stop_disarms(self):
        sim = Simulator()
        fired = []
        t = Timer(sim, lambda: fired.append(sim.now))
        t.restart(1.0)
        t.stop()
        sim.run()
        assert fired == []
        assert not t.armed

    def test_armed_and_expiry(self):
        sim = Simulator()
        t = Timer(sim, lambda: None)
        assert not t.armed and t.expiry is None
        t.restart(4.0)
        assert t.armed and t.expiry == 4.0

    def test_timer_can_rearm_from_callback(self):
        sim = Simulator()
        fired = []

        def cb():
            fired.append(sim.now)
            if len(fired) < 3:
                t.restart(1.0)

        t = Timer(sim, cb)
        t.restart(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
