#!/usr/bin/env python
"""QTPlight for resource-limited mobiles — the paper's §3 scenario.

A media server streams to four mobile clients over lossy wireless
spokes.  Two clients run the stock RFC 3448 receiver (loss-event
history on the device), two run QTPlight (SACK vectors only, the
sender estimates).  Cost meters show the per-packet processing and
resident memory on each device — the load the paper wants off the
mobiles.

Run:  python examples/mobile_receiver.py
"""

from repro.core.instances import QTPLIGHT, TFRC_MEDIA, build_transport_pair
from repro.metrics.cost import CostMeter
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import GilbertElliottChannel
from repro.sim.engine import Simulator
from repro.sim.topology import star

DURATION = 40.0


def main() -> None:
    sim = Simulator(seed=11)
    net = star(
        sim,
        n_leaves=4,
        rate=2e6,
        delay=0.03,
        channel_factory=lambda: GilbertElliottChannel(
            p_g2b=0.01, p_b2g=0.3, p_bad=0.4, rng=sim.rng("radio")
        ),
    )

    clients = []
    for i, leaf in enumerate(net.leaves):
        profile = TFRC_MEDIA if i < 2 else QTPLIGHT
        meter = CostMeter(f"m{i}")
        recorder = FlowRecorder(f"m{i}")
        snd, rcv = build_transport_pair(
            sim, net.hub, leaf, f"stream-{i}", profile,
            recorder=recorder, rx_meter=meter, start=True,
        )
        clients.append((f"m{i}", profile.name, meter, recorder, rcv))

    sim.run(until=DURATION)

    print(f"{'client':8s} {'receiver':10s} {'goodput':>12s} "
          f"{'ops/pkt':>8s} {'peak state':>11s}")
    for name, proto, meter, recorder, rcv in clients:
        packets = max(1, rcv.received_packets)
        print(
            f"{name:8s} {proto:10s} "
            f"{recorder.mean_rate_bps(10, DURATION) / 1e3:9.0f} kb/s "
            f"{meter.ops / packets:8.1f} {meter.peak_bytes:9d} B"
        )
    light = [c for c in clients if c[1] == "QTPlight"]
    std = [c for c in clients if c[1] == "TFRC"]
    ratio = (
        sum(c[2].ops / max(1, c[4].received_packets) for c in std) /
        max(1e-9, sum(c[2].ops / max(1, c[4].received_packets) for c in light))
    )
    print(f"\nQTPlight mobiles do ~{ratio:.1f}x less per-packet work "
          "for the same stream quality.")


if __name__ == "__main__":
    main()
