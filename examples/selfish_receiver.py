#!/usr/bin/env python
"""Selfish receivers vs QTPlight — the paper's §3 protection claim.

Two flows share a 4 Mbit/s bottleneck.  The first flow's receiver
cheats (reports zero loss, inflated receive rate, or fabricated SACK
coverage); the second is an honest TFRC.  Under standard TFRC the
cheater doubles its share and starves the victim; under QTPlight the
sender computes the loss rate itself and audits SACK coverage with
never-sent sequence numbers, so the cheater is caught and throttled.

Run:  python examples/selfish_receiver.py
"""

from repro.harness import selfish_receiver_scenario


def main() -> None:
    print(f"{'estimation':12s} {'receiver':9s} {'cheater':>9s} {'victim':>9s}")
    for mode in ("tfrc", "qtplight"):
        for lying in (False, True):
            r = selfish_receiver_scenario(
                mode, lying, duration=50.0, warmup=15.0, seed=2
            )
            who = "lying" if lying else "honest"
            print(
                f"{mode:12s} {who:9s} "
                f"{r.cheater_bps / 1e6:6.2f} Mb/s {r.victim_bps / 1e6:6.2f} Mb/s"
            )
    print(
        "\nStandard TFRC rewards the lie (cheater ~2x, victim starved);\n"
        "QTPlight's sender-side estimation + audit skips detect the lie\n"
        "and collapse the cheater to the protocol floor."
    )


if __name__ == "__main__":
    main()
