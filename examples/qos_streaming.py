#!/usr/bin/env python
"""QTPAF over a DiffServ/AF network — the paper's §4 scenario.

A streaming server negotiates a 5 Mbit/s assurance with the network's
admission controller, gets an srTCM edge meter for its SLA, and runs
QTPAF (gTFRC + SACK full reliability) across a RIO bottleneck shared
with 8 greedy best-effort TCP flows.  A plain TCP flow with the same
reservation is run for comparison — it fails to use its reservation,
QTPAF nails it.

Run:  python examples/qos_streaming.py
"""

from repro.core.instances import QTPAF, build_transport_pair
from repro.metrics.recorder import FlowRecorder
from repro.qos.marking import ProfileMarker
from repro.qos.sla import AdmissionController, ServiceLevelAgreement
from repro.sim.engine import Simulator
from repro.sim.packet import Color
from repro.sim.queues import RioQueue
from repro.sim.topology import dumbbell
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender

TARGET_BPS = 5e6
BOTTLENECK_BPS = 10e6
N_CROSS = 8
DURATION = 40.0
WARMUP = 10.0


def run(protocol: str) -> FlowRecorder:
    """One run with the assured flow carried by ``protocol``."""
    sim = Simulator(seed=7)

    # -- negotiate the SLA with the network ------------------------------
    admission = AdmissionController(BOTTLENECK_BPS, overprovision_factor=0.9)
    sla = admission.admit(
        ServiceLevelAgreement("assured", TARGET_BPS, burst_bytes=30_000)
    )
    markers = [ProfileMarker(sla.build_meter(), flow_id="assured")]
    markers += [None] * N_CROSS

    net = dumbbell(
        sim,
        n_pairs=1 + N_CROSS,
        bottleneck_rate=BOTTLENECK_BPS,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: RioQueue(
            rng=sim.rng("rio"), mean_pkt_time=0.0008
        ),
        access_delays=[0.1] + [0.002] * N_CROSS,  # long-RTT assured path
        access_markers=markers,
    )

    recorder = FlowRecorder(protocol)
    if protocol == "qtpaf":
        build_transport_pair(
            sim, net.net.node("s0"), net.net.node("d0"), "assured",
            QTPAF(sla.committed_rate_bps), recorder=recorder, start=True,
        )
    else:
        TcpSender(sim, dst="d0", sack=True).attach(
            net.net.node("s0"), "assured"
        ).start()
        TcpReceiver(sim, recorder=recorder, sack=True).attach(
            net.net.node("d0"), "assured"
        )

    for i in range(1, 1 + N_CROSS):
        TcpSender(sim, dst=f"d{i}", sack=True).attach(
            net.net.node(f"s{i}"), f"x{i}"
        ).start()
        TcpReceiver(sim, sack=True).attach(net.net.node(f"d{i}"), f"x{i}")

    sim.run(until=DURATION)
    stats = net.bottleneck.queue.stats
    green_drops = stats.drops_by_color[Color.GREEN]
    print(f"  [{protocol}] in-profile drops at the bottleneck: {green_drops}")
    return recorder


def main() -> None:
    print(f"SLA: {TARGET_BPS / 1e6:.0f} Mbit/s assured of "
          f"{BOTTLENECK_BPS / 1e6:.0f} Mbit/s, {N_CROSS} greedy TCP cross flows")
    for protocol in ("tcp", "qtpaf"):
        rec = run(protocol)
        achieved = rec.mean_rate_bps(WARMUP, DURATION)
        print(f"  [{protocol}] achieved {achieved / 1e6:.2f} Mbit/s "
              f"= {achieved / TARGET_BPS:.0%} of the negotiated rate\n")


if __name__ == "__main__":
    main()
