#!/usr/bin/env python
"""Generate a churning flow population from specs (PR 6).

Walkthrough of the ``repro.traffic`` pipeline: declare a population
(arrival process x class mix x endpoint pool), expand it into ordinary
``FlowSpec`` tuples with one seed, attach per-flow SLAs to a generated
topology, build, run, and read flow-completion-time metrics.  The same
population re-expands bit-identically for the same seed — generated
workloads sweep and golden-pin exactly like hand-enumerated ones.

Run:  python examples/traffic_churn.py
"""

from repro.metrics import fct_summary
from repro.sim.engine import Simulator
from repro.topo import ScenarioSpec, build
from repro.topo.generators import access_star_endpoints, access_star_spec
from repro.traffic import (
    ArrivalSpec,
    FlowClassSpec,
    PopulationSpec,
    SizeSpec,
    apply_slas,
    expand_population,
)

DURATION = 12.0
SEED = 0


def main() -> None:
    # 1. the shape: 24 subscriber hosts behind one 20 Mbit/s RIO uplink
    topology = access_star_spec(24, bottleneck_bps=20e6)

    # 2. the workload: Poisson churn, 90% heavy-tailed TCP mice and 10%
    #    large assured QTPAF elephants (each with a 2 Mbit/s guarantee)
    population = PopulationSpec(
        name="churn",
        arrival=ArrivalSpec(kind="poisson", rate_per_s=12.0),
        classes=(
            FlowClassSpec(
                "mice", 0.9, "tcp",
                SizeSpec(kind="pareto", alpha=1.3,
                         min_bytes=4_000, max_bytes=120_000),
            ),
            FlowClassSpec(
                "elephant", 0.1, "qtpaf",
                SizeSpec(kind="fixed", size_bytes=1_000_000),
                target_bps=2e6,
            ),
        ),
        endpoints=access_star_endpoints(24),
        n_flows=80,
        horizon=DURATION,
    )

    # 3. expand: a pure function of (spec, seed) -> tuple[FlowSpec, ...].
    #    Arrivals, class draws, sizes and endpoints come from four
    #    independent named RNG streams, so changing e.g. the size
    #    distribution never perturbs the arrival times.
    flows = expand_population(population, SEED)
    assert flows == expand_population(population, SEED)  # deterministic

    # 4. close the DiffServ loop: every assured elephant gets its own
    #    srTCM edge meter on its access link
    spec = ScenarioSpec(
        name="traffic_churn",
        topology=apply_slas(topology, flows),
        flows=flows,
        description="generated mice/elephant churn on an access star",
    )

    # 5. build and run like any other scenario
    sim = Simulator(seed=SEED)
    built = build(sim, spec)
    sim.run(until=DURATION)

    # 6. every generated flow is finite (size_bytes), so flows *depart*:
    #    completion times are the population-scale metric
    done = built.completions()
    mice = fct_summary([c for c in done if c.flow_id.startswith("mice")])
    elephants = fct_summary(
        [c for c in done if c.flow_id.startswith("elephant")]
    )

    n_mice = sum(1 for f in flows if f.transport == "tcp")
    n_elephants = len(flows) - n_mice
    print(f"population: {len(flows)} flows "
          f"({n_mice} mice, {n_elephants} elephants) over {DURATION:.0f}s")
    print(f"mice:      {mice.completed}/{n_mice} completed, "
          f"FCT mean {mice.mean * 1e3:.0f} ms, p95 {mice.p95 * 1e3:.0f} ms")
    print(f"elephants: {elephants.completed}/{n_elephants} completed, "
          f"FCT mean {elephants.mean:.2f} s")
    drops = built.queue("gw", "srv").stats.dropped
    print(f"bottleneck drops: {drops}")


if __name__ == "__main__":
    main()
