#!/usr/bin/env python
"""Walkthrough of the unified experiment API (``repro.api``).

Define → run → aggregate → export, all through two classes:

1. **Define** an :class:`~repro.api.Experiment` over a registered
   scenario — axes, fixed configuration, seeds, workers, cache — with
   every parameter name checked against the registry schema at the
   call site.
2. **Run** it; results come back as a typed, queryable
   :class:`~repro.api.ResultSet` (deterministic grid order, memoized
   on disk, warm multi-process fan-out).
3. **Aggregate** over the seed axis into a paper-style summary table.
4. **Export** rows as CSV/JSON for notebooks and dashboards.

Run:  python examples/experiment_api.py
The same sweep from the command line:

    python -m repro.harness run lossy_path \
        --sweep protocol=tcp,tfrc --sweep loss_rate=0.01,0.03 \
        --set duration=20 --seeds 0,1,2 --format csv
"""

from pathlib import Path

from repro.api import Experiment

CACHE_DIR = Path(".sweep-cache")


def main() -> None:
    # 1. define — a typo in any parameter name raises right here
    experiment = (
        Experiment("lossy_path")
        .sweep(protocol=("tcp", "tfrc"), loss_rate=(0.01, 0.03))
        .configure(duration=20.0, warmup=5.0, bursty=True)
        .seeds(range(3))
        .workers(None)  # one per CPU
        .cache(CACHE_DIR)
    )
    print(experiment, "\n")

    # 2. run — records arrive in grid order, seeds fastest-varying
    results = experiment.run(
        progress=lambda r: print(
            f"  {'cache' if r.cached else f'{r.elapsed:5.1f}s'}  "
            f"{r.params['protocol']:>4} @ {r.params['loss_rate']:.0%} "
            f"seed {r.params['seed']}"
        )
    )

    # ... and answer point questions without dict-building boilerplate
    tcp = results.one(protocol="tcp", loss_rate=0.03, seed=0)
    print(f"\nTCP @ 3% loss (seed 0): {tcp.goodput_bps / 1e3:.0f} kb/s")

    # 3. aggregate — fold the seed axis into mean/std/p50 summaries
    summary = results.aggregate(
        "goodput_bps", over="seed", stats=("mean", "std", "p50")
    )
    print()
    print(
        summary.table(
            title="TCP vs TFRC goodput over a bursty 3-hop chain "
            "(mean/std/p50 over 3 seeds)"
        )
    )

    # slice first, aggregate after: ResultSet ops compose
    tfrc_only = results.filter(protocol="tfrc")
    print(
        f"\nTFRC mean goodput across all runs: "
        f"{sum(r.goodput_bps for r in tfrc_only.results) / len(tfrc_only) / 1e3:.0f} kb/s"
    )

    # 4. export — machine-readable forms for notebooks/dashboards
    csv_path = Path("lossy_path_sweep.csv")
    results.to_csv(csv_path)
    print(f"\nfull sweep exported to {csv_path} "
          f"({len(results)} rows; JSON via results.to_json())")


if __name__ == "__main__":
    main()
