#!/usr/bin/env python
"""Sweep-runner demo: gTFRC vs TFRC across AF target rates.

Uses :func:`repro.harness.runner.run_matrix` to fan the paper's §4
question — does the assured flow actually get its reservation? — over
a target-rate grid for both transports, in parallel when CPUs allow,
with results memoized under ``.sweep-cache/`` so a second invocation
returns instantly.

Run:  python examples/sweep_runner.py
The same sweep from the command line:

    python -m repro.harness run af_assurance \
        --sweep protocol=tfrc,gtfrc --sweep target_bps=2e6,4e6,6e6,8e6 \
        --set n_cross=6 --set duration=30 --workers 0
"""

import os
import time
from pathlib import Path

from repro.harness.runner import run_matrix
from repro.harness.tables import format_table

TARGETS = (2e6, 4e6, 6e6, 8e6)
CACHE_DIR = Path(".sweep-cache")


def main() -> None:
    started = time.perf_counter()
    records = run_matrix(
        "af_assurance",
        {"target_bps": TARGETS, "protocol": ("tfrc", "gtfrc")},
        base=dict(n_cross=6, duration=30.0, warmup=10.0, seed=1),
        workers=os.cpu_count(),
        cache_dir=CACHE_DIR,
        progress=lambda r: print(
            f"  {'cache' if r.cached else f'{r.elapsed:5.1f}s'}  "
            f"{r.params['protocol']:>5} @ {r.params['target_bps'] / 1e6:.0f} Mb/s"
        ),
    )
    wall = time.perf_counter() - started

    rows = []
    for target in TARGETS:
        by_proto = {
            r.params["protocol"]: r.result
            for r in records
            if r.params["target_bps"] == target
        }
        tfrc, gtfrc = by_proto["tfrc"], by_proto["gtfrc"]
        rows.append(
            [
                f"{target / 1e6:.0f}",
                tfrc.achieved_bps / 1e6,
                tfrc.ratio,
                gtfrc.achieved_bps / 1e6,
                gtfrc.ratio,
            ]
        )
    print()
    print(
        format_table(
            ["g (Mb/s)", "tfrc (Mb/s)", "tfrc ratio", "gtfrc (Mb/s)", "gtfrc ratio"],
            rows,
            title="gTFRC vs TFRC: achieved rate vs AF reservation "
                  "(10 Mb/s RIO, 6 TCP cross)",
        )
    )
    cached = sum(r.cached for r in records)
    print(
        f"\n{len(records)} runs in {wall:.1f}s wall "
        f"({cached} from {CACHE_DIR}/ — re-run me and watch it drop to zero)"
    )


if __name__ == "__main__":
    main()
