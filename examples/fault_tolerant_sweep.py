#!/usr/bin/env python
"""Walkthrough of the fault-tolerant sweep fabric (PR 7).

A production-sized sweep *will* see failures: a scenario bug on one
parameter combination, a worker OOM-killed mid-run, a run that wedges,
a cache file truncated by a power loss.  The seed runner aborted the
whole sweep on the first of these and threw away the warm worker pool;
the fabric now recovers what it can and reports the rest:

1. **Inject faults deterministically** — a seeded
   :class:`~repro.harness.faults.FaultPlan` makes chosen cells raise,
   hang, die hard or return garbage, so resilience is demonstrable
   (the same plan always breaks the same cells).
2. **Retry with backoff, reap hangs** — ``.retries(n)`` and
   ``.timeout(seconds)`` on the :class:`~repro.api.Experiment`
   (or ``--max-retries`` / ``--run-timeout`` on the CLI).
3. **Keep partial results** — ``run(on_failure="keep")`` returns every
   cell: ``results.ok()`` / ``results.failures()`` /
   ``results.coverage()``; tables grow a ``status`` column and
   aggregates skip failed cells while counting them.
4. **Resume** — every cached sweep journals per-cell status to a
   manifest next to the memo; ``run(resume=True)`` (CLI ``--resume``)
   re-runs only the missing/failed cells.

Run:  python examples/fault_tolerant_sweep.py
The same flow from the command line:

    REPRO_FAULTS='[{"kind": "raise", "match": {"seed": 1}}]' \
        python -m repro.harness run lossy_path --seeds 0,1,2 \
        --max-retries 2 --run-timeout 120
"""

import shutil
from pathlib import Path

from repro.api import Experiment
from repro.harness.faults import FaultPlan, FaultSpec

CACHE_DIR = Path(".sweep-cache-demo")


def main() -> None:
    shutil.rmtree(CACHE_DIR, ignore_errors=True)  # a clean demo slate

    experiment = (
        Experiment("lossy_path")
        .sweep(protocol=("tcp", "tfrc"))
        .configure(duration=10.0, warmup=2.0, loss_rate=0.02)
        .seeds(range(3))
        .workers(2)
        .cache(CACHE_DIR)
        .timeout(300.0)  # no run may wedge the sweep forever
    )

    # --- 1. a chaos plan: one cell is broken beyond retry, and 30% of
    # first attempts crash the worker outright (recoverable).  The env
    # hook (REPRO_FAULTS carries the same plan as JSON) is how chaos
    # reaches a sweep from the outside, e.g. the CI smoke step.
    plan = FaultPlan(seed=7, faults=(
        FaultSpec(kind="raise", scenario="lossy_path",
                  match={"protocol": "tfrc", "seed": 1}, times=None),
        FaultSpec(kind="exit", rate=0.3, times=1),
    ))

    # --- 2+3. run with retries; keep partial results
    from repro.harness.runner import run_matrix

    from repro.api import ResultSet

    results = ResultSet(run_matrix(
        "lossy_path", {"protocol": ("tcp", "tfrc")},
        base=dict(duration=10.0, warmup=2.0, loss_rate=0.02),
        seeds=range(3), workers=2, cache_dir=CACHE_DIR,
        run_timeout=300.0, max_retries=2, strict=False, faults=plan,
    ))

    print(results.table(title="partial sweep (note the status column)"))
    print(f"\ncoverage: {results.coverage():.0%} "
          f"({len(results.ok())} ok, {len(results.failures())} failed)")
    for record in results.failures():
        failure = record.result
        print(f"  {record.params} -> {failure.failure_kind} "
              f"({failure.error}) after {failure.attempts} attempts")

    # aggregates skip the failed cells and report per-group coverage
    print(results.aggregate("goodput_bps", over="seed")
          .table(title="goodput (failed cells skipped, counted)"))

    # --- 4. the broken cell is fixed (here: the fault plan is gone);
    # resume re-runs ONLY the missing/failed cells — everything else
    # replays from the memo cache
    resumed = experiment.run(on_failure="keep", resume=True)
    cached = sum(1 for r in resumed if r.cached)
    print(f"\nresumed: {len(resumed)} cells, {cached} from cache, "
          f"{len(resumed) - cached} re-run, "
          f"coverage now {resumed.coverage():.0%}")
    assert resumed.coverage() == 1.0

    shutil.rmtree(CACHE_DIR, ignore_errors=True)


if __name__ == "__main__":
    main()
