#!/usr/bin/env python
"""Compose a custom scenario from declarative specs (PR 3).

Builds a scenario that exists nowhere in the experiment registry — a
three-hop path whose middle hop is a RED-queued 4 Mbit/s bottleneck,
carrying one AF-conditioned gTFRC flow, one best-effort TFRC flow and a
late-starting TCP flow that leaves again before the end — entirely from
``repro.topo`` specs.  No scenario module, no scaffold: specs in,
built network out.

Run:  python examples/compose_scenario.py
"""

from repro.sim.engine import Simulator
from repro.topo import (
    FlowSpec,
    LinkSpec,
    MarkerSpec,
    QueueSpec,
    ScenarioSpec,
    SlaSpec,
    TopologySpec,
    build,
)

DURATION = 30.0
TARGET = 1.5e6  # the gTFRC flow's AF guarantee


def main() -> None:
    spec = ScenarioSpec(
        name="custom_demo",
        description="RED bottleneck mid-path, mixed transports",
        topology=TopologySpec(
            links=(
                # edge hop: fast, marks the assured flow at the domain edge
                LinkSpec(
                    "src", "in", 100e6, 0.002,
                    marker=MarkerSpec(sla=SlaSpec("assured", TARGET)),
                ),
                # middle hop: the 4 Mbit/s RED bottleneck
                LinkSpec(
                    "in", "out", 4e6, 0.02,
                    queue=QueueSpec(kind="red", min_th=10, max_th=40,
                                    capacity_packets=80),
                ),
                # exit hop
                LinkSpec("out", "dst", 100e6, 0.002),
            )
        ),
        flows=(
            FlowSpec("assured", "src", "dst", transport="gtfrc",
                     target_bps=TARGET),
            FlowSpec("media", "src", "dst", transport="tfrc"),
            # joins at t=10 s, leaves at t=20 s
            FlowSpec("burst", "src", "dst", transport="tcp",
                     start=10.0, stop=20.0),
        ),
    )

    sim = Simulator(seed=1)
    built = build(sim, spec)
    sim.run(until=DURATION)

    stats = built.queue("in", "out").stats
    print(f"scenario {spec.name!r}: {len(spec.flows)} flows over "
          f"{len(spec.topology.links)} duplex links")
    print(f"bottleneck: {stats.enqueued} accepted, {stats.dropped} dropped "
          f"({stats.drop_ratio():.1%})")
    for flow in spec.flows:
        rec = built.recorder(flow.flow_id)
        rate = rec.mean_rate_bps(5.0, DURATION)
        note = (f"  (guarantee {TARGET / 1e6:.1f} Mbit/s)"
                if flow.target_bps else "")
        print(f"  {flow.flow_id:8s} [{flow.transport:5s}] "
              f"{rate / 1e6:5.2f} Mbit/s mean after warmup{note}")


if __name__ == "__main__":
    main()
