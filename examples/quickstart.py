#!/usr/bin/env python
"""Quickstart: negotiate a transport instance and move data over a network.

Builds a dumbbell network, lets two endpoints negotiate a profile via
the wire handshake (the responder is a resource-limited mobile, so the
negotiation lands on QTPlight), and streams data for 30 simulated
seconds.

Run:  python examples/quickstart.py
"""

from repro import Simulator, dumbbell
from repro.core.connection import Initiator, Responder
from repro.core.negotiation import CapabilitySet
from repro.metrics.recorder import FlowRecorder
from repro.sim.queues import DropTailQueue


def main() -> None:
    sim = Simulator(seed=42)

    # -- network: 2 Mbit/s bottleneck, 20 ms one-way delay ---------------
    net = dumbbell(
        sim,
        n_pairs=1,
        bottleneck_rate=2e6,
        bottleneck_delay=0.02,
        bottleneck_queue_factory=lambda: DropTailQueue(capacity_packets=25),
    )

    # -- endpoints advertise capabilities; the wire handshake picks the
    #    instance (the mobile cannot run the RFC 3448 loss machinery) ----
    recorder = FlowRecorder("quickstart")
    server_caps = CapabilitySet()
    mobile_caps = CapabilitySet(light_receiver=True)

    def on_receiver_ready(receiver, profile):
        print(f"negotiated instance: {profile.describe()}")

    responder = Responder(
        sim,
        mobile_caps,
        on_established=on_receiver_ready,
        receiver_kwargs={"recorder": recorder},
    ).attach(net.net.node("d0"), "flow-1")

    initiator = Initiator(
        sim, dst="d0", capabilities=server_caps
    ).attach(net.net.node("s0"), "flow-1")
    initiator.start()

    # -- run --------------------------------------------------------------
    sim.run(until=30.0)

    sender = initiator.sender
    print(f"sent packets:      {sender.sent_packets}")
    print(f"delivered packets: {recorder.delivered_packets}")
    print(f"mean goodput:      {recorder.mean_rate_bps(5, 30) / 1e6:.2f} Mbit/s "
          f"(bottleneck 2.00 Mbit/s)")
    print(f"sender rate now:   {8 * sender.rate / 1e6:.2f} Mbit/s")
    print(f"loss event rate p: {sender.estimator.loss_event_rate():.4f} "
          "(computed at the sender - QTPlight)")


if __name__ == "__main__":
    main()
