#!/usr/bin/env python
"""Negotiable reliability over a lossy path — the paper's §1 feature (1).

Streams a 25 fps MPEG-like source (I/P/B frames with 350 ms playout
deadlines) over a 3%-lossy link under each reliability mode and prints
the trade-off: NONE drops frames, FULL repairs them late, the partial
modes repair exactly what the deadline still allows.

Run:  python examples/reliability_modes.py
"""

from repro.apps.playout import PlayoutBuffer
from repro.apps.sources import MediaSource
from repro.core.instances import build_transport_pair
from repro.core.profile import ReliabilityMode, TransportProfile
from repro.metrics.recorder import FlowRecorder
from repro.netem.channels import BernoulliLossChannel
from repro.sim.engine import Simulator
from repro.sim.topology import chain

DURATION = 40.0
PLAYOUT = 0.35


def run(mode: ReliabilityMode):
    sim = Simulator(seed=5)
    topo = chain(
        sim, n_hops=1, rate=3e6, delay=0.03,
        channel_factory=lambda: BernoulliLossChannel(0.03, rng=sim.rng("loss")),
    )
    profile = TransportProfile(
        name=f"media-{mode.value}",
        reliability=mode,
        partial_deadline=PLAYOUT,
        partial_max_retx=2,
    )
    playout = PlayoutBuffer()
    recorder = FlowRecorder()
    sender, receiver = build_transport_pair(
        sim, topo.first, topo.last, "media", profile,
        recorder=recorder,
        on_deliver=lambda pkt: playout.deliver(pkt, sim.now),
        bulk=False,
    )
    source = MediaSource(sim, sender, fps=25, playout_delay=PLAYOUT)
    source.start()
    sim.run(until=DURATION)
    useful = playout.on_time / max(1, source.messages)
    return source, sender, receiver, playout, useful


def main() -> None:
    print(f"{'mode':14s} {'sent':>5s} {'delivered':>9s} {'retx':>5s} "
          f"{'late':>5s} {'useful':>7s}")
    for mode in ReliabilityMode:
        source, sender, receiver, playout, useful = run(mode)
        print(
            f"{mode.value:14s} {source.messages:5d} "
            f"{receiver.delivered_in_order:9d} {sender.retransmissions:5d} "
            f"{playout.late:5d} {useful:6.1%}"
        )
    print("\n'useful' = fraction of sent frames played before their deadline;")
    print("time-bounded partial reliability dominates both extremes.")


if __name__ == "__main__":
    main()
