"""Regenerate the paper's T1 + F1 tables through one crash-safe Campaign.

The campaign layer runs both sweeps as one named unit under a single
durable directory: spec + provenance, per-job results/tables, an
integrity manifest and a markdown report.  Kill this script at any
instant and re-run it with ``--resume`` — it completes exactly the
missing work and the artifacts come out byte-identical (the final diff
against the committed ``benchmarks/results/`` tables proves it).

Usage::

    PYTHONPATH=src python examples/paper_campaign.py [--dir DIR] [--resume]

The full sweeps take a few minutes; interrupting and resuming is the
point, not a failure mode.
"""

import argparse
import sys
from pathlib import Path

from repro.api import Experiment, ResultSet
from repro.campaign import Campaign, verify_campaign
from repro.harness.tables import format_table

REPO = Path(__file__).resolve().parent.parent
COMMITTED = REPO / "benchmarks" / "results"

T1_TARGETS = (2e6, 4e6, 6e6, 8e6)
T1_PROTOCOLS = ("tcp", "tfrc", "gtfrc", "qtpaf")
F1_SEEDS = (0, 1, 2)


def t1_table(results: ResultSet) -> str:
    rows = []
    for target in T1_TARGETS:
        for proto in T1_PROTOCOLS:
            r = results.one(target_bps=target, protocol=proto)
            rows.append([
                f"{target / 1e6:.0f}",
                proto,
                r.achieved_bps / 1e6,
                r.ratio,
                r.green_drop_ratio,
                r.out_drop_ratio,
                r.cross_total_bps / 1e6,
            ])
    return format_table(
        ["g (Mb/s)", "protocol", "achieved (Mb/s)", "ratio",
         "green drop", "out drop", "cross (Mb/s)"],
        rows,
        title="T1: AF bandwidth assurance "
              "(10 Mb/s RIO, 8 TCP cross, assured RTT ~240 ms)",
    )


def f1_table(results: ResultSet) -> str:
    rows = []
    for proto in ("tfrc", "tcp"):
        for seed in F1_SEEDS:
            r = results.one(protocol=proto, seed=seed)
            rows.append([proto, seed, r.mean_bps / 1e6, r.cov])
    mean_cov = results.aggregate("cov", over="seed", stats=("mean",))
    rows.append(["tfrc", "mean", "", mean_cov.value("cov_mean", protocol="tfrc")])
    rows.append(["tcp", "mean", "", mean_cov.value("cov_mean", protocol="tcp")])
    return format_table(
        ["protocol", "seed", "mean rate (Mb/s)", "CoV (200 ms bins)"],
        rows,
        title="F1: throughput smoothness vs one TCP competitor "
              "(4 Mb/s RED bottleneck)",
    )


def build_campaign(workers) -> Campaign:
    return (
        Campaign("paper")
        .add(
            "t1",
            Experiment("af_assurance")
            .sweep(target_bps=T1_TARGETS, protocol=T1_PROTOCOLS)
            .configure(n_cross=8, assured_access_delay=0.1,
                       duration=40.0, warmup=10.0, seed=3)
            .workers(workers),
            table=t1_table,
        )
        .add(
            "f1",
            Experiment("smoothness")
            .sweep(protocol=("tfrc", "tcp"))
            .configure(duration=80, warmup=20)
            .seeds(F1_SEEDS)
            .workers(workers),
            table=f1_table,
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", type=Path,
                        default=REPO / "results" / "paper_campaign")
    parser.add_argument("--resume", action="store_true",
                        help="complete a previously interrupted run")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes per sweep (0 = one per CPU)")
    args = parser.parse_args(argv)

    run = build_campaign(args.workers).run(args.dir, resume=args.resume)
    print(run.summary())
    print(f"report: {run.report_path}")

    integrity = verify_campaign(args.dir)
    print(integrity.summary())

    # the regenerated tables must match the committed paper tables
    status = 0 if run.ok and integrity.ok else 1
    for job, committed in (("t1", "t1_af_assurance.txt"),
                           ("f1", "f1_smoothness.txt")):
        produced = args.dir / "scenarios" / job / "table.txt"
        expected = COMMITTED / committed
        if produced.read_bytes() == expected.read_bytes():
            print(f"{job}: matches committed {expected.name}")
        else:
            print(f"{job}: DIFFERS from committed {expected.name}")
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
