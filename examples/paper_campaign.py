"""Regenerate every committed paper table through one crash-safe Campaign.

The campaign layer runs all twelve sweeps — T1–T6, A1, F1–F5 — as one
named unit under a single durable directory: spec + provenance,
per-job results/tables, an integrity manifest and a markdown report.
Kill this script at any instant and re-run it with ``--resume`` — it
completes exactly the missing work and the artifacts come out
byte-identical (the final diff against the committed
``benchmarks/results/`` tables proves it).

Each job replicates its benchmark suite's exact sweep configuration
and table formatting (``benchmarks/test_t1 .. test_f5``), so the
produced ``table.txt`` files must match the committed tables byte for
byte.

Usage::

    PYTHONPATH=src python examples/paper_campaign.py [--dir DIR] [--resume]
    PYTHONPATH=src python examples/paper_campaign.py --jobs t1,f1

The full campaign takes tens of minutes; interrupting and resuming is
the point, not a failure mode.  ``--jobs`` runs a subset (note a
subset is a *different* campaign identity, so point it at its own
``--dir``).
"""

import argparse
import sys
from pathlib import Path

from repro.api import Experiment, ResultSet
from repro.campaign import Campaign, verify_campaign
from repro.core.profile import ReliabilityMode
from repro.harness.experiments.negotiation_matrix import NEGOTIATION_PAIRS
from repro.harness.tables import format_table

REPO = Path(__file__).resolve().parent.parent
COMMITTED = REPO / "benchmarks" / "results"

T1_TARGETS = (2e6, 4e6, 6e6, 8e6)
T1_PROTOCOLS = ("tcp", "tfrc", "gtfrc", "qtpaf")
T2_ACCESS_DELAYS = (0.002, 0.03, 0.06, 0.1)  # one-way; RTT ~= 4x + 40 ms
T2_PROTOCOLS = ("tcp", "qtpaf")
T3_PROFILES = ("tfrc", "qtplight", "qtpaf")
T3_LOSS_RATES = (0.0, 0.02, 0.05)
T5_MODES = (
    ReliabilityMode.NONE,
    ReliabilityMode.PARTIAL_TIME,
    ReliabilityMode.PARTIAL_COUNT,
    ReliabilityMode.FULL,
)
A1_TARGET = 6e6
A1_VARIANTS = ("floor", "p-scaling", "none")
F1_SEEDS = (0, 1, 2)
F2_LOSS_RATES = (0.005, 0.01, 0.02, 0.05, 0.08)
F3_LOSS_RATES = (0.005, 0.01, 0.02, 0.04, 0.08)
F4_N_TCP = (1, 2, 4, 8, 16)
F5_TARGET = 5e6
F5_STEP_TIME = 20.0
F5_PROTOCOLS = ("tfrc", "gtfrc")


# ----------------------------------------------------------------------
# table renderers — one per job, formatting identical to the benchmark
# suite that committed the table
# ----------------------------------------------------------------------
def t1_table(results: ResultSet) -> str:
    rows = []
    for target in T1_TARGETS:
        for proto in T1_PROTOCOLS:
            r = results.one(target_bps=target, protocol=proto)
            rows.append([
                f"{target / 1e6:.0f}",
                proto,
                r.achieved_bps / 1e6,
                r.ratio,
                r.green_drop_ratio,
                r.out_drop_ratio,
                r.cross_total_bps / 1e6,
            ])
    return format_table(
        ["g (Mb/s)", "protocol", "achieved (Mb/s)", "ratio",
         "green drop", "out drop", "cross (Mb/s)"],
        rows,
        title="T1: AF bandwidth assurance "
              "(10 Mb/s RIO, 8 TCP cross, assured RTT ~240 ms)",
    )


def t2_table(results: ResultSet) -> str:
    rows = []
    for delay in T2_ACCESS_DELAYS:
        rtt_ms = (2 * (delay + 0.002) + 2 * 0.02) * 1e3
        row = [f"{rtt_ms:.0f}"]
        for proto in T2_PROTOCOLS:
            row.append(
                results.value("ratio", assured_access_delay=delay, protocol=proto)
            )
        rows.append(row)
    return format_table(
        ["assured RTT (ms)", "tcp ratio", "qtpaf ratio"],
        rows,
        title="T2: achieved/negotiated vs assured-flow RTT (g = 5 Mb/s)",
    )


def t3_table(results: ResultSet) -> str:
    rows = []
    for name in ("TFRC", "QTPlight", "QTPAF"):
        for loss in T3_LOSS_RATES:
            r = results.one(profile_name=name, loss_rate=loss)
            rows.append([
                name,
                f"{loss * 100:.0f}%",
                r.packets,
                r.rx_ops_per_packet,
                r.rx_peak_bytes,
                r.tx_estimator_ops_per_packet,
                r.feedback_sent,
            ])
    return format_table(
        ["profile", "loss", "pkts", "rx ops/pkt", "rx peak B",
         "tx est ops/pkt", "reports"],
        rows,
        title="T3: receiver processing/memory load by composition",
    )


def t4_table(results: ResultSet) -> str:
    rows = []
    for mode in ("tfrc", "qtplight"):
        honest = results.one(mode=mode, lying=False)
        lying = results.one(mode=mode, lying=True)
        rows.append([
            mode,
            honest.cheater_bps / 1e6,
            lying.cheater_bps / 1e6,
            lying.cheater_bps / max(honest.cheater_bps, 1.0),
            honest.victim_bps / 1e6,
            lying.victim_bps / 1e6,
        ])
    return format_table(
        ["estimation", "cheater honest (Mb/s)", "cheater lying (Mb/s)",
         "lying gain", "victim (honest run)", "victim (lying run)"],
        rows,
        title="T4: selfish-receiver attack, 4 Mb/s bottleneck shared "
              "with one honest TFRC",
    )


def t5_table(results: ResultSet) -> str:
    rows = []
    for mode in T5_MODES:
        r = results.one(mode=mode.value)
        rows.append([
            r.mode,
            r.sent,
            r.delivered,
            r.skipped,
            r.retransmissions,
            r.abandoned,
            r.on_time_ratio,
            r.useful_ratio,
            r.mean_latency * 1e3,
            r.p95_latency * 1e3,
        ])
    return format_table(
        ["mode", "sent", "delivered", "skipped", "retx", "abandoned",
         "on-time", "useful", "mean lat (ms)", "p95 lat (ms)"],
        rows,
        title="T5: media stream (25 fps, 280 ms playout) over a 3% lossy "
              "link, by reliability mode",
    )


def t6_table(results: ResultSet) -> str:
    rows = [
        [r.pair, r.instance, r.congestion_control, r.reliability, r.estimation]
        for r in results.results
    ]
    return format_table(
        ["endpoints", "instance", "cc", "reliability", "estimation"],
        rows,
        title="T6: negotiated instance per capability pair",
    )


def a1_table(results: ResultSet) -> str:
    rows = []
    for v in A1_VARIANTS:
        r = results.one(variant=v)
        rows.append(
            [v, r.achieved_bps / 1e6, r.achieved_bps / A1_TARGET, r.floor_hits]
        )
    return format_table(
        ["variant", "achieved (Mb/s)", "ratio", "floor activations"],
        rows,
        title="A1: gTFRC mechanism ablation (g = 6 Mb/s, T1 conditions)",
    )


def f1_table(results: ResultSet) -> str:
    rows = []
    for proto in ("tfrc", "tcp"):
        for seed in F1_SEEDS:
            r = results.one(protocol=proto, seed=seed)
            rows.append([proto, seed, r.mean_bps / 1e6, r.cov])
    mean_cov = results.aggregate("cov", over="seed", stats=("mean",))
    rows.append(["tfrc", "mean", "", mean_cov.value("cov_mean", protocol="tfrc")])
    rows.append(["tcp", "mean", "", mean_cov.value("cov_mean", protocol="tcp")])
    return format_table(
        ["protocol", "seed", "mean rate (Mb/s)", "CoV (200 ms bins)"],
        rows,
        title="F1: throughput smoothness vs one TCP competitor "
              "(4 Mb/s RED bottleneck)",
    )


def f2_table(results: ResultSet) -> str:
    rows = []
    for loss in F2_LOSS_RATES:
        tcp_b = results.value("goodput_bps", loss_rate=loss, protocol="tcp", bursty=True)
        tfrc_b = results.value("goodput_bps", loss_rate=loss, protocol="tfrc", bursty=True)
        tcp_u = results.value("goodput_bps", loss_rate=loss, protocol="tcp", bursty=False)
        tfrc_u = results.value("goodput_bps", loss_rate=loss, protocol="tfrc", bursty=False)
        rows.append([
            f"{loss * 100:.1f}%",
            tcp_b / 1e3,
            tfrc_b / 1e3,
            tfrc_b / max(tcp_b, 1e3),
            tcp_u / 1e3,
            tfrc_u / 1e3,
        ])
    return format_table(
        ["loss", "tcp bursty (kb/s)", "tfrc bursty (kb/s)",
         "tfrc/tcp (bursty)", "tcp iid (kb/s)", "tfrc iid (kb/s)"],
        rows,
        title="F2: goodput over a 3-hop 2 Mb/s chain with per-hop loss",
    )


def f3_table(results: ResultSet) -> str:
    rows = []
    for loss in F3_LOSS_RATES:
        r = results.one(loss_rate=loss)
        rows.append([
            f"{loss * 100:.1f}%",
            r.mean_p_shadow,
            r.mean_p_sender,
            r.mean_abs_rel_error,
            r.goodput_bps / 1e3,
        ])
    return format_table(
        ["channel loss", "p receiver-side", "p sender-side",
         "mean |rel err|", "goodput (kb/s)"],
        rows,
        title="F3: QTPlight sender-side loss-event rate vs shadow "
              "RFC 3448 receiver estimate",
    )


def f4_table(results: ResultSet) -> str:
    rows = []
    for n in F4_N_TCP:
        r = results.one(n_tcp=n)
        rows.append(
            [n, r.tfrc_bps / 1e6, r.tcp_mean_bps / 1e6, r.normalized, r.jain]
        )
    return format_table(
        ["n tcp", "tfrc (Mb/s)", "tcp mean (Mb/s)", "normalized", "jain"],
        rows,
        title="F4: one TFRC vs N TCP on an 8 Mb/s RED bottleneck",
    )


def f5_table(results: ResultSet) -> str:
    rows = []
    for proto in F5_PROTOCOLS:
        r = results.one(protocol=proto)
        rows.append([
            proto,
            r.min_after_step / 1e6,
            r.time_below_90pct,
            r.mean_after_step / 1e6,
        ])
    return format_table(
        ["protocol", "min rate after step (Mb/s)",
         "seconds below 0.9 g", "mean after step (Mb/s)"],
        rows,
        title=f"F5: congestion step at t={F5_STEP_TIME:.0f}s, g = 5 Mb/s "
              "(8 TCP join)",
    )


# ----------------------------------------------------------------------
# the campaign: every job replicates its benchmark suite's sweep
# ----------------------------------------------------------------------
#: job name -> (Experiment factory, table renderer, committed table file)
def _jobs(workers):
    return {
        "t1": (
            Experiment("af_assurance")
            .sweep(target_bps=T1_TARGETS, protocol=T1_PROTOCOLS)
            .configure(n_cross=8, assured_access_delay=0.1,
                       duration=40.0, warmup=10.0, seed=3)
            .workers(workers),
            t1_table,
            "t1_af_assurance.txt",
        ),
        "t2": (
            Experiment("af_assurance")
            .sweep(assured_access_delay=T2_ACCESS_DELAYS, protocol=T2_PROTOCOLS)
            .configure(target_bps=5e6, n_cross=8,
                       duration=40.0, warmup=10.0, seed=3)
            .workers(workers),
            t2_table,
            "t2_rtt_asymmetry.txt",
        ),
        "t3": (
            Experiment("receiver_load")
            .sweep(profile=T3_PROFILES, loss_rate=T3_LOSS_RATES)
            .configure(duration=30.0, seed=2)
            .workers(workers),
            t3_table,
            "t3_receiver_load.txt",
        ),
        "t4": (
            Experiment("selfish_receiver")
            .sweep(mode=("tfrc", "qtplight"), lying=(False, True))
            .configure(duration=60.0, warmup=15.0, seed=2)
            .workers(workers),
            t4_table,
            "t4_selfish_receiver.txt",
        ),
        "t5": (
            Experiment("reliability_modes")
            .sweep(mode=tuple(m.value for m in T5_MODES))
            .configure(duration=60.0, seed=2)
            .workers(workers),
            t5_table,
            "t5_reliability_modes.txt",
        ),
        "t6": (
            Experiment("negotiation")
            .sweep(pair=NEGOTIATION_PAIRS)
            .workers(workers),
            t6_table,
            "t6_negotiation.txt",
        ),
        "a1": (
            Experiment("gtfrc_ablation")
            .sweep(variant=A1_VARIANTS)
            .configure(target_bps=A1_TARGET, seed=3)
            .workers(workers),
            a1_table,
            "a1_gtfrc_ablation.txt",
        ),
        "f1": (
            Experiment("smoothness")
            .sweep(protocol=("tfrc", "tcp"))
            .configure(duration=80, warmup=20)
            .seeds(F1_SEEDS)
            .workers(workers),
            f1_table,
            "f1_smoothness.txt",
        ),
        "f2": (
            Experiment("lossy_path")
            .sweep(loss_rate=F2_LOSS_RATES, protocol=("tcp", "tfrc"),
                   bursty=(True, False))
            .configure(n_hops=3, duration=40.0, warmup=10.0, seed=2)
            .workers(workers),
            f2_table,
            "f2_wireless.txt",
        ),
        "f3": (
            Experiment("estimation_accuracy")
            .sweep(loss_rate=F3_LOSS_RATES)
            .configure(duration=50.0, warmup=10.0, seed=2)
            .workers(workers),
            f3_table,
            "f3_estimation_accuracy.txt",
        ),
        "f4": (
            Experiment("friendliness")
            .sweep(n_tcp=F4_N_TCP)
            .configure(duration=60.0, warmup=15.0, seed=2)
            .workers(workers),
            f4_table,
            "f4_friendliness.txt",
        ),
        "f5": (
            Experiment("convergence")
            .sweep(protocol=F5_PROTOCOLS)
            .configure(target_bps=F5_TARGET, step_time=F5_STEP_TIME, seed=3)
            .workers(workers),
            f5_table,
            "f5_convergence.txt",
        ),
    }


def build_campaign(workers, jobs=None) -> Campaign:
    catalog = _jobs(workers)
    selected = list(catalog) if jobs is None else list(jobs)
    unknown = sorted(set(selected) - set(catalog))
    if unknown:
        raise SystemExit(
            f"unknown job(s) {unknown}; available: {', '.join(catalog)}"
        )
    campaign = Campaign("paper")
    for name in selected:
        experiment, table, _ = catalog[name]
        campaign.add(name, experiment, table=table)
    return campaign


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", type=Path,
                        default=REPO / "results" / "paper_campaign")
    parser.add_argument("--resume", action="store_true",
                        help="complete a previously interrupted run")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes per sweep (0 = one per CPU)")
    parser.add_argument("--jobs", type=str, default=None,
                        help="comma-separated subset (default: all twelve); "
                        "a subset is a different campaign — use its own --dir")
    args = parser.parse_args(argv)
    jobs = args.jobs.split(",") if args.jobs else None

    run = build_campaign(args.workers, jobs).run(args.dir, resume=args.resume)
    print(run.summary())
    print(f"report: {run.report_path}")

    integrity = verify_campaign(args.dir)
    print(integrity.summary())

    # the regenerated tables must match the committed paper tables
    status = 0 if run.ok and integrity.ok else 1
    catalog = _jobs(args.workers)
    for job in (jobs if jobs is not None else list(catalog)):
        committed = catalog[job][2]
        produced = args.dir / "scenarios" / job / "table.txt"
        expected = COMMITTED / committed
        if produced.read_bytes() == expected.read_bytes():
            print(f"{job}: matches committed {expected.name}")
        else:
            print(f"{job}: DIFFERS from committed {expected.name}")
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
